// The paper's two-step post-silicon fingerprinting flow (§I.A and §VI).
//
// "First, an IC is designed with a number of flexibilities so every IC
//  fabricated is identical. Second, in the post-silicon stage, the
//  flexibilities are solidified such that each IC has an individual
//  fingerprint." ... "Potential methods include using fuses as the
//  connections for the added lines so we can decide which ones are
//  active."
//
// build_fused_master() applies the generic modification at every site but
// routes each injected literal through a *fuse gate* whose other input is
// a programmable constant:
//
//   AND-like site:  literal' = OR2(literal, fuse)   fuse=1 -> inactive
//   OR/XOR-like:    literal' = AND2(literal, fuse)  fuse=0 -> inactive
//
// With every fuse intact the master is functionally identical to the
// golden netlist and *structurally identical across all fabricated
// copies*; program_fuses() then "blows" a per-buyer subset (flipping the
// constants), activating that buyer's fingerprint bits without any
// netlist redesign. read_fuses() recovers the programmed bit vector.
//
// Only the generic (Fig. 4) option is fused — one fuse per site — which
// mirrors the paper's 2^n counting for n locations.
#pragma once

#include <vector>

#include "fingerprint/embedder.hpp"
#include "fingerprint/location.hpp"
#include "netlist/netlist.hpp"

namespace odcfp {

/// One bit per injection site (flat order of FingerprintEmbedder).
using FuseVector = std::vector<bool>;

struct FusedMaster {
  Netlist netlist;
  /// Per flat site index: the CONST gate driving the fuse input.
  std::vector<GateId> fuse_gates;
  /// Per flat site index: the inactive polarity (value the constant has
  /// when the fuse is intact / fingerprint bit 0).
  std::vector<bool> inactive_value;

  std::size_t num_fuses() const { return fuse_gates.size(); }
};

/// Builds the fused master from a golden netlist and its locations. The
/// result is functionally equivalent to `golden` (all fuses intact).
FusedMaster build_fused_master(const Netlist& golden,
                               const std::vector<FingerprintLocation>& locs);

/// Programs the fuses: bit i true = blow fuse i (activate the site's
/// modification). Re-programming is allowed (constants are swapped).
void program_fuses(FusedMaster& master, const FuseVector& bits);

/// Reads back the programmed fuse vector from the master.
FuseVector read_fuses(const FusedMaster& master);

/// Reads the fuse vector from any structurally-copied instance of the
/// master (e.g. after Verilog round-trip), matching fuse gates by name.
FuseVector read_fuses_from_copy(const Netlist& copy,
                                const FusedMaster& master);

}  // namespace odcfp
