#include "fingerprint/fuse_flow.hpp"

#include "common/check.hpp"

namespace odcfp {

namespace {

/// Mirrors FingerprintEmbedder's injection mechanics (widen if the
/// library has a wider same-kind cell, else append an identity-class
/// gate), but with an arbitrary literal net and no undo log.
void inject_net(Netlist& nl, GateId site_gate, InjectClass cls,
                NetId lit) {
  const Cell& cur = nl.cell_of(site_gate);
  CellKind target = cur.kind;
  if (target == CellKind::kInv) target = CellKind::kNand;
  if (target == CellKind::kBuf) target = CellKind::kAnd;
  const CellId wide =
      nl.library().find_kind(target, cur.num_inputs() + 1);
  if (wide != kInvalidCell &&
      (cur.kind == target || cur.num_inputs() == 1)) {
    std::vector<NetId> fanins = nl.gate(site_gate).fanins;
    fanins.push_back(lit);
    nl.rewire_gate(site_gate, wide, fanins);
    return;
  }
  const CellKind app_kind = (cls == InjectClass::kAndLike)
                                ? CellKind::kAnd
                                : (cls == InjectClass::kOrLike)
                                      ? CellKind::kOr
                                      : CellKind::kXor;
  const NetId tail = nl.gate(site_gate).output;
  const GateId app = nl.add_gate_kind(app_kind, {tail, lit});
  nl.transfer_fanouts_except(tail, nl.gate(app).output, app);
}

CellId const_cell(const CellLibrary& lib, bool value) {
  const CellId c = lib.find_kind(
      value ? CellKind::kConst1 : CellKind::kConst0, 0);
  ODCFP_CHECK(c != kInvalidCell);
  return c;
}

}  // namespace

FusedMaster build_fused_master(
    const Netlist& golden, const std::vector<FingerprintLocation>& locs) {
  FusedMaster master{golden, {}, {}};
  Netlist& nl = master.netlist;
  std::size_t fuse_index = 0;
  for (const FingerprintLocation& loc : locs) {
    for (const InjectionSite& site : loc.sites) {
      ODCFP_CHECK(!site.options.empty());
      const ModOption& o = site.options[0];  // the generic injection

      NetId lit = o.source;
      if (o.invert) {
        const GateId inv = nl.add_gate_kind(
            CellKind::kInv, {o.source},
            "fuse_inv_" + std::to_string(fuse_index));
        lit = nl.gate(inv).output;
      }

      // Fuse gate: neutralizes the literal while the fuse is intact.
      const bool inactive = (site.inject_class == InjectClass::kAndLike);
      const GateId fuse = nl.add_gate(
          const_cell(nl.library(), inactive), {},
          "fuse_" + std::to_string(fuse_index));
      const CellKind gate_kind = inactive ? CellKind::kOr : CellKind::kAnd;
      const GateId fg = nl.add_gate_kind(
          gate_kind, {lit, nl.gate(fuse).output},
          "fusegate_" + std::to_string(fuse_index));

      inject_net(nl, site.gate, site.inject_class, nl.gate(fg).output);
      master.fuse_gates.push_back(fuse);
      master.inactive_value.push_back(inactive);
      ++fuse_index;
    }
  }
  nl.validate(/*allow_dangling=*/true);
  return master;
}

void program_fuses(FusedMaster& master, const FuseVector& bits) {
  ODCFP_CHECK_MSG(bits.size() == master.num_fuses(),
                  "fuse vector size mismatch");
  Netlist& nl = master.netlist;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool value = bits[i] ? !master.inactive_value[i]
                               : master.inactive_value[i];
    const CellId cell = const_cell(nl.library(), value);
    if (nl.gate(master.fuse_gates[i]).cell != cell) {
      nl.rewire_gate(master.fuse_gates[i], cell, {});
    }
  }
}

FuseVector read_fuses(const FusedMaster& master) {
  FuseVector bits(master.num_fuses());
  for (std::size_t i = 0; i < master.num_fuses(); ++i) {
    const bool value = master.netlist.cell_of(master.fuse_gates[i]).kind ==
                       CellKind::kConst1;
    bits[i] = (value != master.inactive_value[i]);
  }
  return bits;
}

FuseVector read_fuses_from_copy(const Netlist& copy,
                                const FusedMaster& master) {
  FuseVector bits(master.num_fuses());
  for (std::size_t i = 0; i < master.num_fuses(); ++i) {
    const std::string& name =
        master.netlist.gate(master.fuse_gates[i]).name;
    const GateId g = copy.find_gate(name);
    ODCFP_CHECK_MSG(g != kInvalidGate,
                    "fuse '" << name << "' missing in copy");
    const bool value = copy.cell_of(g).kind == CellKind::kConst1;
    bits[i] = (value != master.inactive_value[i]);
  }
  return bits;
}

}  // namespace odcfp
