// Fingerprint locations (paper Definition 1) and their modification
// options (paper §III.C, Figs. 4 and 5).
//
// A fingerprint location is a primary gate plus the fanout-free cone (FFC)
// feeding one of its pins, such that another pin of the primary gate
// carries an "ODC trigger signal" (Definition 2): a signal whose value v
// makes the FFC output unobservable through the primary gate. Each
// ODC-capable gate inside the FFC is an *injection site*; at each site one
// of several *options* may be applied:
//
//  * generic injection (Fig. 4): feed the trigger signal itself (in the
//    polarity that is the site gate's identity element when the trigger is
//    inactive) into the site gate;
//  * reroute injections (Fig. 5): instead of the trigger X, feed one or
//    two inputs of X's driver gate that force X to its trigger value —
//    these arrive earlier and cost less delay; a driver with n forcing
//    inputs yields n single + n(n-1)/2 pair options = n(n+1)/2 total.
//
// Each site independently contributes log2(1 + #options) bits; a location
// with sites s1..sk carries sum_i log2(1 + |options(s_i)|) bits, matching
// the paper's "k bits are added" and "log2(n(n+1)/2) bits" accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace odcfp {

class ThreadPool;

/// How an injected literal must combine with the site gate: its identity
/// class. AND-class gates absorb a constant-1 literal, OR-class a
/// constant-0, XOR-class a constant-0 (but flip on 1).
enum class InjectClass : std::uint8_t { kAndLike, kOrLike, kXorLike };

/// One way to modify one injection site.
struct ModOption {
  enum class Kind : std::uint8_t {
    kGeneric,      ///< Inject the trigger signal X itself (Fig. 4).
    kRerouteOne,   ///< Inject one input of X's driver (Fig. 5).
    kRerouteTwo,   ///< Inject two inputs of X's driver (Fig. 5).
  };
  Kind kind = Kind::kGeneric;
  NetId source = kInvalidNet;   ///< First injected signal.
  bool invert = false;          ///< Inject complement (adds an inverter).
  NetId source2 = kInvalidNet;  ///< Second signal (kRerouteTwo only).
  bool invert2 = false;
};

/// A modifiable gate inside the location's FFC, with its options.
struct InjectionSite {
  GateId gate = kInvalidGate;
  InjectClass inject_class = InjectClass::kAndLike;
  std::vector<ModOption> options;
};

struct FingerprintLocation {
  GateId primary = kInvalidGate;
  int y_pin = -1;                 ///< Primary pin fed by the FFC.
  NetId y_net = kInvalidNet;      ///< FFC output signal Y.
  GateId y_driver = kInvalidGate; ///< Root gate of the FFC.
  int trigger_pin = -1;           ///< Primary pin carrying the trigger X.
  NetId trigger_net = kInvalidNet;
  int trigger_value = 0;          ///< X == v makes Y unobservable.
  std::vector<InjectionSite> sites;

  /// log2 of the number of distinct configurations (including "no
  /// change"): sum over sites of log2(1 + |options|).
  double capacity_bits() const;

  /// Product over sites of (1 + |options|) as a double (can be large).
  double num_configurations() const;
};

struct LocationFinderOptions {
  /// Include XOR/XNOR gates as injection sites. The paper's Definition 1
  /// (criterion 3) admits only non-zero-ODC or single-input gates, which
  /// excludes XOR; enabling this is an extension (see the ablation bench).
  bool allow_xor_sites = false;

  /// Enable the Fig. 5 reroute options.
  bool enable_reroute = true;

  /// Cap on injection sites collected per location (<=0: unlimited).
  /// The paper's pseudo-code modifies one FFC gate per location ("choose
  /// fan in with greatest depth"); raising this enables the multi-bit
  /// "k input gates in the FFC" variant of §III.C.
  int max_sites_per_location = 1;

  /// Trigger choice among valid candidates (paper: earliest depth, to
  /// bound the delay overhead of the rerouted signal).
  enum class TriggerPolicy : std::uint8_t { kEarliestDepth, kRandom };
  TriggerPolicy trigger_policy = TriggerPolicy::kEarliestDepth;
  std::uint64_t seed = 7;  ///< Used by TriggerPolicy::kRandom.

  /// Optional pool for the per-primary-gate analysis phase (MFFC
  /// extraction, cone-input collection, ODC trigger enumeration — all
  /// pure functions of the immutable netlist). The greedy commit phase
  /// that resolves inter-location conflicts stays sequential, so the
  /// returned locations are bit-identical for any pool size, including
  /// nullptr (fully serial).
  ThreadPool* pool = nullptr;
};

/// Scans the netlist for fingerprint locations per Definition 1. The
/// returned locations are mutually independent: a gate is an injection
/// site of at most one location, each gate is primary of at most one
/// location, and no location's Y net is tapped as another location's
/// trigger/source (this keeps embeddings composable and removals
/// order-independent).
std::vector<FingerprintLocation> find_locations(
    const Netlist& nl, const LocationFinderOptions& options = {});

/// Total capacity in bits over a set of locations.
double total_capacity_bits(const std::vector<FingerprintLocation>& locs);

/// Total number of injection sites over a set of locations.
std::size_t total_sites(const std::vector<FingerprintLocation>& locs);

/// The identity class a given cell kind belongs to when used as an
/// injection site; throws CheckError for kinds that cannot be sites.
InjectClass inject_class_for(CellKind kind);

/// True if `kind` can be an injection site under `options`.
bool is_site_kind(CellKind kind, const LocationFinderOptions& options);

}  // namespace odcfp
