#include "fingerprint/embedder.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/telemetry.hpp"

namespace odcfp {

FingerprintCode blank_code(const std::vector<FingerprintLocation>& locs) {
  FingerprintCode code(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    code[i].assign(locs[i].sites.size(), 0);
  }
  return code;
}

FingerprintEmbedder::FingerprintEmbedder(
    Netlist& nl, std::vector<FingerprintLocation> locations)
    : nl_(&nl), locations_(std::move(locations)) {
  state_.resize(locations_.size());
  for (std::size_t l = 0; l < locations_.size(); ++l) {
    state_[l].resize(locations_[l].sites.size());
    for (std::size_t s = 0; s < locations_[l].sites.size(); ++s) {
      flat_sites_.push_back({l, s});
      site_gates_.insert(locations_[l].sites[s].gate);
    }
  }
#ifndef NDEBUG
  pristine_signature_ = structural_signature(*nl_);
#endif
}

FingerprintEmbedder::SiteRef FingerprintEmbedder::site_ref(
    std::size_t flat_index) const {
  ODCFP_CHECK(flat_index < flat_sites_.size());
  return flat_sites_[flat_index];
}

int FingerprintEmbedder::applied_option(std::size_t loc,
                                        std::size_t site) const {
  ODCFP_CHECK(loc < state_.size() && site < state_[loc].size());
  return state_[loc][site].option;
}

NetId find_reusable_inverter(const Netlist& nl, NetId source,
                             const std::unordered_set<GateId>& site_gates) {
  // A pre-existing inverter on the source net can serve as the
  // complemented literal for free — exactly what a designer would wire in
  // layout. Fingerprint-added inverters (fp_ prefix) and gates that are
  // themselves injection sites (their cell may change) are not shared so
  // that extraction can predict the reuse from the golden netlist alone.
  for (const FanoutRef& ref : nl.net(source).fanouts) {
    if (site_gates.count(ref.gate)) continue;
    const Gate& g = nl.gate(ref.gate);
    if (g.is_dead()) continue;
    if (nl.cell_of(ref.gate).kind != CellKind::kInv) continue;
    if (g.name.rfind("fp_", 0) == 0) continue;
    return g.output;
  }
  return kInvalidNet;
}

NetId FingerprintEmbedder::literal_net(NetId source, bool invert,
                                       std::vector<Op>& ops) {
  if (!invert) return source;
  const NetId reusable =
      find_reusable_inverter(*nl_, source, site_gates_);
  if (reusable != kInvalidNet) return reusable;
  const GateId inv = nl_->add_gate_kind(
      CellKind::kInv, {source}, nl_->fresh_gate_name(kInverterPrefix));
  Op op;
  op.kind = Op::Kind::kAddGate;
  op.gate = inv;
  ops.push_back(std::move(op));
  return nl_->gate(inv).output;
}

namespace {

/// Cell kind used when widening a site gate by one input.
CellKind widen_target_kind(CellKind current) {
  switch (current) {
    case CellKind::kInv:  return CellKind::kNand;  // INV(a) == NAND2(a, 1)
    case CellKind::kBuf:  return CellKind::kAnd;   // BUF(a) == AND2(a, 1)
    default:              return current;
  }
}

CellKind append_kind(InjectClass cls) {
  switch (cls) {
    case InjectClass::kAndLike: return CellKind::kAnd;
    case InjectClass::kOrLike:  return CellKind::kOr;
    case InjectClass::kXorLike: return CellKind::kXor;
  }
  ODCFP_CHECK_MSG(false, "bad inject class");
}

}  // namespace

void FingerprintEmbedder::inject_literal(GateId site_gate, InjectClass cls,
                                         NetId lit, std::vector<Op>& ops) {
  const Cell& cur = nl_->cell_of(site_gate);
  const CellKind target = widen_target_kind(cur.kind);
  const CellId wide =
      nl_->library().find_kind(target, cur.num_inputs() + 1);
  if (wide != kInvalidCell &&
      (cur.kind == target || cur.num_inputs() == 1)) {
    // Widen the gate in place: the literal is appended as the last pin.
    // The undo drops exactly that pin and keeps whatever nets are on the
    // original pins at undo time — another location's append may have
    // legitimately re-routed one of them in the meantime, and restoring a
    // stale snapshot would resurrect dangling fingerprint nets.
    Op op;
    op.kind = Op::Kind::kWiden;
    op.gate = site_gate;
    op.old_cell = nl_->gate(site_gate).cell;
    std::vector<NetId> fanins = nl_->gate(site_gate).fanins;
    fanins.push_back(lit);
    ops.push_back(std::move(op));
    nl_->rewire_gate(site_gate, wide, fanins);
    return;
  }
  // Append a 2-input identity-class gate at the end of the chain.
  const NetId tail = chain_output(site_gate);
  const GateId app = nl_->add_gate_kind(
      append_kind(cls), {tail, lit}, nl_->fresh_gate_name(kAddedGatePrefix));
  const NetId app_out = nl_->gate(app).output;
  Op add;
  add.kind = Op::Kind::kAddGate;
  add.gate = app;
  ops.push_back(std::move(add));
  nl_->transfer_fanouts_except(tail, app_out, app);
  Op tr;
  tr.kind = Op::Kind::kTransfer;
  tr.from = tail;
  tr.to = app_out;
  ops.push_back(std::move(tr));
}

NetId FingerprintEmbedder::chain_output(GateId site_gate) const {
  NetId n = nl_->gate(site_gate).output;
  for (;;) {
    const Net& net = nl_->net(n);
    if (net.fanouts.size() != 1) return n;
    const GateId g = net.fanouts[0].gate;
    const std::string& gname = nl_->gate(g).name;
    if (gname.rfind(kAddedGatePrefix, 0) != 0 ||
        nl_->gate(g).fanins[0] != n) {
      return n;
    }
    n = nl_->gate(g).output;
  }
}

void FingerprintEmbedder::apply(std::size_t loc, std::size_t site,
                                int option) {
  ODCFP_CHECK(loc < locations_.size());
  const FingerprintLocation& L = locations_[loc];
  ODCFP_CHECK(site < L.sites.size());
  const InjectionSite& S = L.sites[site];
  ODCFP_CHECK_MSG(option >= 1 &&
                      option <= static_cast<int>(S.options.size()),
                  "option " << option << " out of range");
  SiteState& st = state_[loc][site];
  ODCFP_CHECK_MSG(st.option == 0, "site already modified");

  const ModOption& O = S.options[static_cast<std::size_t>(option - 1)];
  ODCFP_FAULT_POINT("embedder.apply");
  // Strong exception safety: a failure mid-injection (e.g. an allocation
  // fault inside add_gate) unwinds the ops already recorded, so the
  // netlist is back in its pre-apply state when the exception escapes.
  std::vector<Op> ops;
  try {
    const NetId lit1 = literal_net(O.source, O.invert, ops);
    inject_literal(S.gate, S.inject_class, lit1, ops);
    if (O.source2 != kInvalidNet) {
      const NetId lit2 = literal_net(O.source2, O.invert2, ops);
      inject_literal(S.gate, S.inject_class, lit2, ops);
    }
  } catch (...) {
    undo_ops(ops);
    throw;
  }
  st.option = option;
  st.ops = std::move(ops);
  ++num_applied_;
  TELEM_COUNT("embed.applies", 1);
}

void FingerprintEmbedder::undo_ops(const std::vector<Op>& ops) {
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    switch (it->kind) {
      case Op::Kind::kTransfer:
        nl_->transfer_fanouts(it->to, it->from);
        break;
      case Op::Kind::kAddGate:
        nl_->remove_gate(it->gate);
        break;
      case Op::Kind::kWiden: {
        std::vector<NetId> fanins = nl_->gate(it->gate).fanins;
        ODCFP_CHECK(!fanins.empty());
        fanins.pop_back();
        nl_->rewire_gate(it->gate, it->old_cell, fanins);
        break;
      }
    }
  }
}

void FingerprintEmbedder::remove(std::size_t loc, std::size_t site) {
  ODCFP_CHECK(loc < state_.size() && site < state_[loc].size());
  SiteState& st = state_[loc][site];
  if (st.option == 0) return;
  undo_ops(st.ops);
  st = SiteState{};
  --num_applied_;
  TELEM_COUNT("embed.removes", 1);
}

void FingerprintEmbedder::apply_code(const FingerprintCode& code) {
  ODCFP_CHECK(code.size() == locations_.size());
  remove_all();
  for (std::size_t l = 0; l < code.size(); ++l) {
    ODCFP_CHECK(code[l].size() == locations_[l].sites.size());
    for (std::size_t s = 0; s < code[l].size(); ++s) {
      if (code[l][s] != 0) apply(l, s, code[l][s]);
    }
  }
}

void FingerprintEmbedder::apply_all_generic() {
  for (std::size_t l = 0; l < locations_.size(); ++l) {
    for (std::size_t s = 0; s < locations_[l].sites.size(); ++s) {
      if (state_[l][s].option == 0) apply(l, s, 1);
    }
  }
}

void FingerprintEmbedder::remove_all() {
  for (std::size_t l = 0; l < state_.size(); ++l) {
    for (std::size_t s = 0; s < state_[l].size(); ++s) {
      remove(l, s);
    }
  }
  // Undoing every site must restore the pre-embedding structure exactly
  // (name-wise gate/net compare) — a silent mismatch here would corrupt
  // every later baseline measurement and extraction.
  ODCFP_DCHECK(structural_signature(*nl_) == pristine_signature_);
}

std::vector<GateId> FingerprintEmbedder::touched_gates(
    std::size_t loc, std::size_t site) const {
  ODCFP_CHECK(loc < state_.size() && site < state_[loc].size());
  const SiteState& st = state_[loc][site];
  if (st.option == 0) return {};
  std::vector<GateId> gates{locations_[loc].sites[site].gate};
  for (const Op& op : st.ops) {
    if (op.kind == Op::Kind::kAddGate) gates.push_back(op.gate);
  }
  return gates;
}

FingerprintCode FingerprintEmbedder::current_code() const {
  FingerprintCode code = blank_code(locations_);
  for (std::size_t l = 0; l < state_.size(); ++l) {
    for (std::size_t s = 0; s < state_[l].size(); ++s) {
      code[l][s] = static_cast<std::uint8_t>(state_[l][s].option);
    }
  }
  return code;
}

namespace {

/// (source net name, inverted) pair describing one injected literal.
using LiteralDesc = std::pair<std::string, bool>;

LiteralDesc decode_literal(const Netlist& fp, NetId lit) {
  const GateId d = fp.net(lit).driver;
  if (d != kInvalidGate &&
      fp.gate(d).name.rfind(kInverterPrefix, 0) == 0) {
    return {fp.net(fp.gate(d).fanins[0]).name, true};
  }
  return {fp.net(lit).name, false};
}

std::vector<LiteralDesc> expected_literals(
    const Netlist& golden, const ModOption& o,
    const std::unordered_set<GateId>& site_gates) {
  // Mirrors FingerprintEmbedder::literal_net: an inverted literal reuses a
  // pre-existing inverter when the golden netlist has one.
  auto literal = [&](NetId source, bool invert) -> LiteralDesc {
    if (invert) {
      const NetId reused =
          find_reusable_inverter(golden, source, site_gates);
      if (reused != kInvalidNet) return {golden.net(reused).name, false};
    }
    return {golden.net(source).name, invert};
  };
  std::vector<LiteralDesc> lits;
  lits.push_back(literal(o.source, o.invert));
  if (o.source2 != kInvalidNet) {
    lits.push_back(literal(o.source2, o.invert2));
  }
  std::sort(lits.begin(), lits.end());
  return lits;
}

}  // namespace

namespace {

/// Shared extraction core; `strict` throws on unreadable sites instead of
/// recording a damage status.
LenientExtraction extract_impl(const Netlist& fingerprinted,
                               const Netlist& golden,
                               const std::vector<FingerprintLocation>& locs,
                               bool strict) {
  LenientExtraction result;
  result.code = blank_code(locs);
  result.status.resize(locs.size());
  std::unordered_set<GateId> site_gates;
  for (const FingerprintLocation& loc : locs) {
    for (const InjectionSite& s : loc.sites) site_gates.insert(s.gate);
  }
  for (std::size_t l = 0; l < locs.size(); ++l) {
    result.status[l].assign(locs[l].sites.size(),
                            SiteReadStatus::kRecovered);
    for (std::size_t s = 0; s < locs[l].sites.size(); ++s) {
      const InjectionSite& S = locs[l].sites[s];
      const Gate& gg = golden.gate(S.gate);
      const GateId g2 = fingerprinted.find_gate(gg.name);
      if (g2 == kInvalidGate ||
          fingerprinted.gate(g2).fanins.size() < gg.fanins.size()) {
        ODCFP_CHECK_MSG(!strict, "site gate '"
                                     << gg.name
                                     << "' missing in fingerprinted "
                                        "netlist or lost fanins");
        result.status[l][s] = SiteReadStatus::kSiteMissing;
        ++result.damaged;
        continue;
      }
      std::vector<LiteralDesc> literals;

      // Literals added by widening: fanin pins beyond the golden arity.
      const Gate& gf = fingerprinted.gate(g2);
      for (std::size_t i = gg.fanins.size(); i < gf.fanins.size(); ++i) {
        literals.push_back(decode_literal(fingerprinted, gf.fanins[i]));
      }

      // Literals added by appended gates: follow the chain from the site
      // gate's (name-stable) output net.
      NetId n = gf.output;
      for (;;) {
        const Net& net = fingerprinted.net(n);
        if (net.fanouts.size() != 1) break;
        const GateId a = net.fanouts[0].gate;
        const Gate& ag = fingerprinted.gate(a);
        if (ag.name.rfind(kAddedGatePrefix, 0) != 0 || ag.fanins[0] != n) {
          break;
        }
        literals.push_back(decode_literal(fingerprinted, ag.fanins[1]));
        n = ag.output;
      }

      if (literals.empty()) {
        ++result.recovered;  // option 0
        continue;
      }
      std::sort(literals.begin(), literals.end());
      bool matched = false;
      for (std::size_t o = 0; o < S.options.size(); ++o) {
        if (expected_literals(golden, S.options[o], site_gates) ==
            literals) {
          result.code[l][s] = static_cast<std::uint8_t>(o + 1);
          matched = true;
          break;
        }
      }
      if (matched) {
        ++result.recovered;
      } else {
        ODCFP_CHECK_MSG(!strict, "modification at site gate '"
                                     << gg.name
                                     << "' matches no known option");
        result.status[l][s] = SiteReadStatus::kUnknownMod;
        ++result.damaged;
      }
    }
  }
  return result;
}

}  // namespace

FingerprintCode extract_code(const Netlist& fingerprinted,
                             const Netlist& golden,
                             const std::vector<FingerprintLocation>& locs) {
  return extract_impl(fingerprinted, golden, locs, /*strict=*/true).code;
}

LenientExtraction extract_code_lenient(
    const Netlist& fingerprinted, const Netlist& golden,
    const std::vector<FingerprintLocation>& locs) {
  return extract_impl(fingerprinted, golden, locs, /*strict=*/false);
}

}  // namespace odcfp
