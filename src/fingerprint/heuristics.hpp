// Overhead-constrained fingerprinting heuristics (paper §III.D / §IV.B).
//
// * reactive_reduce — the paper's implemented method: start from the fully
//   fingerprinted circuit, repeatedly trial-remove applied modifications
//   and permanently remove the one that reduces delay the most; when no
//   single removal helps, remove a random one (the paper's random kicks),
//   until the delay overhead constraint is met. Run with multiple restarts
//   ("this program needed to be run several times") and keep the best.
//
// * proactive_insert — the paper's sketched alternative: consider
//   modifications one at a time (cheapest expected delay first, trying
//   reroute options before the generic injection since rerouted signals
//   arrive earlier) and keep a modification only if the circuit still
//   meets the delay constraint.
//
// Both return the kept code plus the resulting overhead numbers, which is
// exactly what Table III and Fig. 7 report.
#pragma once

#include <cstdint>

#include "common/budget.hpp"
#include "fingerprint/embedder.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace odcfp {

/// Area/delay/power of the unfingerprinted circuit.
struct Baseline {
  double area = 0;
  double delay = 0;
  double power = 0;

  static Baseline measure(const Netlist& golden,
                          const StaticTimingAnalyzer& sta,
                          const PowerAnalyzer& power);
};

/// Overheads of the current (possibly fingerprinted) netlist vs baseline.
/// A degenerate zero baseline axis (area/delay/power == 0) reports +inf
/// for any positive measured value on that axis instead of masking the
/// cost as 0.0; zero-over-zero stays 0.
struct Overheads {
  double area_ratio = 0;   ///< (area - base) / base
  double delay_ratio = 0;
  double power_ratio = 0;

  static Overheads measure(const Netlist& nl, const Baseline& base,
                           const StaticTimingAnalyzer& sta,
                           const PowerAnalyzer& power);
};

struct HeuristicOutcome {
  FingerprintCode code;        ///< Kept modifications.
  std::size_t sites_total = 0;
  std::size_t sites_kept = 0;
  double bits_total = 0;       ///< Capacity before reduction.
  double bits_kept = 0;        ///< Capacity of kept sites.
  Overheads overheads;
  std::size_t sta_evaluations = 0;
  /// kOk when the heuristic ran to completion; kExhausted when its budget
  /// died first — `code` is then the best checkpoint found so far (for
  /// reactive_reduce always a delay-feasible one, falling back to the
  /// blank code when no better feasible checkpoint existed yet).
  Status status = Status::kOk;
  /// Telemetry span in which the budget died ("" when unknown; nullptr
  /// when status != kExhausted). Points at a string literal — cheap to
  /// copy, valid for the program's lifetime.
  const char* exhausted_at = nullptr;
  /// Random escapes taken across the whole run (all restarts). Can exceed
  /// ReactiveOptions::max_random_kicks, which bounds only the longest
  /// *consecutive* streak without greedy progress.
  std::size_t random_kicks = 0;
  std::size_t max_consecutive_kicks = 0;

  double fingerprint_reduction() const {
    return bits_total <= 0 ? 0 : 1.0 - bits_kept / bits_total;
  }
};

struct ReactiveOptions {
  double max_delay_overhead = 0.10;  ///< e.g. 0.10 = 10% constraint.
  int restarts = 3;
  /// Cap on *consecutive* random escapes: a run ends only after this many
  /// kicks in a row without an intervening greedy removal. (Cumulative
  /// counting would end long runs whose kicks were spread out between
  /// phases of healthy greedy progress.)
  int max_random_kicks = 500;
  std::uint64_t seed = 99;
  /// Gates with slack below this are "critical" for trial filtering.
  double slack_epsilon = 1e-9;
  /// Trial-remove at most this many candidates per iteration (the most
  /// critical ones); bounds the O(sites^2) worst case on large circuits.
  int max_candidates_per_iteration = 32;
  /// Deadline / step / cancellation caps. When the budget dies
  /// mid-restart the heuristic stops at the next checkpoint and returns
  /// the best feasible code seen so far (HeuristicOutcome::status ==
  /// kExhausted) instead of running to completion.
  const Budget* budget = nullptr;
};

struct ProactiveOptions {
  double max_delay_overhead = 0.10;
  /// Try reroute options (earlier-arriving sources) before the generic
  /// trigger injection at each site.
  bool prefer_reroute = true;
  /// Deadline / step / cancellation caps; on exhaustion the sites kept so
  /// far (each individually verified feasible) are returned with
  /// HeuristicOutcome::status == kExhausted.
  const Budget* budget = nullptr;
};

/// Seed set for ArrivalTracker::update after structurally modifying
/// `gates`: the gates themselves, the drivers of their fanins (whose
/// output loads changed), and the sinks of their outputs (which may now
/// read different nets). Shared by the overhead heuristics and the batch
/// edition pipeline. Dead / out-of-range gates are skipped.
std::vector<GateId> timing_seeds(const Netlist& nl,
                                 const std::vector<GateId>& gates);

/// Runs the reactive heuristic. The embedder's netlist is left in the
/// returned configuration.
HeuristicOutcome reactive_reduce(FingerprintEmbedder& embedder,
                                 const Baseline& baseline,
                                 const StaticTimingAnalyzer& sta,
                                 const PowerAnalyzer& power,
                                 const ReactiveOptions& options = {});

/// Runs the proactive heuristic from a blank configuration. The embedder's
/// netlist is left in the returned configuration.
HeuristicOutcome proactive_insert(FingerprintEmbedder& embedder,
                                  const Baseline& baseline,
                                  const StaticTimingAnalyzer& sta,
                                  const PowerAnalyzer& power,
                                  const ProactiveOptions& options = {});

}  // namespace odcfp
