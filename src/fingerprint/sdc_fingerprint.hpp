// SDC-based circuit fingerprinting — the authors' companion technique
// (Dunbar & Qu, "Satisfiability Don't Care Condition Based Circuit
// Fingerprinting Techniques", ASP-DAC 2015; cited as ref. [9] and as the
// model for this paper's approach).
//
// Where the ODC method hides changes behind unobservable outputs, the SDC
// method hides them under unreachable inputs: if some input patterns of a
// gate can never occur (proven by the exact window-SDC analysis in
// src/odc/window.hpp), the gate's cell may be swapped for any other cell
// of the same arity whose function differs *only on impossible patterns*.
// The swap is a one-cell layout change — even more "minute" than the ODC
// modification (no wires move at all) — and each location with k
// interchangeable alternatives carries log2(1+k) bits.
//
// With the default library the interchangeable pairs include
// AND2<->XNOR2 (pattern 00 unreachable), NAND2<->XOR2 (00 unreachable),
// OR2<->XOR2 and NOR2<->XNOR2 (11 unreachable), and the wider families
// where a forcing side input is correlated.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "odc/window.hpp"

namespace odcfp {

struct SdcLocation {
  GateId gate = kInvalidGate;
  /// Bit p set = gate-input pattern p is provably unreachable.
  unsigned impossible_mask = 0;
  /// Cells interchangeable with the current one under that mask (the
  /// current cell itself is not listed).
  std::vector<CellId> alternatives;

  double capacity_bits() const;
};

struct SdcFinderOptions {
  WindowOptions window;        ///< Depth/size of the exact SDC analysis.
  bool skip_fingerprint_gates = true;  ///< Ignore fp_* gates.
};

/// Scans all gates, computes their window SDCs, and returns the gates
/// with at least one alternative cell.
std::vector<SdcLocation> find_sdc_locations(
    const Netlist& nl, const SdcFinderOptions& options = {});

double total_sdc_capacity_bits(const std::vector<SdcLocation>& locs);

/// Applies/removes/extracts cell-swap fingerprints. code[i] in
/// [0, 1 + alternatives(i)): 0 keeps the original cell.
class SdcEmbedder {
 public:
  SdcEmbedder(Netlist& nl, std::vector<SdcLocation> locations);

  const std::vector<SdcLocation>& locations() const { return locations_; }

  void apply(std::size_t loc, int option);  // 1-based option
  void remove(std::size_t loc);
  int applied_option(std::size_t loc) const;
  void apply_code(const std::vector<std::uint8_t>& code);
  std::vector<std::uint8_t> current_code() const;

 private:
  Netlist* nl_;
  std::vector<SdcLocation> locations_;
  std::vector<CellId> original_cell_;
  std::vector<int> state_;
};

/// Recovers the code from a fingerprinted copy (gates matched by name).
std::vector<std::uint8_t> extract_sdc_code(
    const Netlist& fingerprinted, const Netlist& golden,
    const std::vector<SdcLocation>& locs);

}  // namespace odcfp
