#include "fingerprint/sdc_fingerprint.hpp"

#include <cmath>

#include "common/check.hpp"

namespace odcfp {

double SdcLocation::capacity_bits() const {
  return std::log2(1.0 + static_cast<double>(alternatives.size()));
}

double total_sdc_capacity_bits(const std::vector<SdcLocation>& locs) {
  double bits = 0;
  for (const SdcLocation& l : locs) bits += l.capacity_bits();
  return bits;
}

std::vector<SdcLocation> find_sdc_locations(
    const Netlist& nl, const SdcFinderOptions& options) {
  std::vector<SdcLocation> result;
  const CellLibrary& lib = nl.library();
  for (GateId g : nl.topo_order()) {
    const Gate& gt = nl.gate(g);
    if (options.skip_fingerprint_gates &&
        gt.name.rfind("fp_", 0) == 0) {
      continue;
    }
    const Cell& cell = lib.cell(gt.cell);
    const int k = cell.num_inputs();
    if (k < 2 || k > 4) continue;

    const WindowSdcResult sdc = window_sdc(nl, g, options.window);
    if (!sdc.computed || sdc.impossible_patterns == 0) continue;

    SdcLocation loc;
    loc.gate = g;
    loc.impossible_mask = sdc.impossible_mask;
    const unsigned mask = sdc.impossible_mask;
    if (mask == 0) continue;

    // Alternatives: same-arity cells equal on every reachable pattern,
    // different somewhere on the impossible ones.
    const std::uint64_t tt = cell.function.bits();
    for (CellId c = 0; c < lib.size(); ++c) {
      if (c == gt.cell) continue;
      const Cell& alt = lib.cell(c);
      if (alt.num_inputs() != k) continue;
      const std::uint64_t diff = alt.function.bits() ^ tt;
      if (diff == 0) continue;
      bool ok = true;
      for (unsigned p = 0; p < (1u << k); ++p) {
        if (((diff >> p) & 1) && !((mask >> p) & 1)) {
          ok = false;
          break;
        }
      }
      if (ok) loc.alternatives.push_back(c);
    }
    if (!loc.alternatives.empty()) result.push_back(std::move(loc));
  }
  return result;
}

SdcEmbedder::SdcEmbedder(Netlist& nl, std::vector<SdcLocation> locations)
    : nl_(&nl), locations_(std::move(locations)) {
  state_.assign(locations_.size(), 0);
  original_cell_.reserve(locations_.size());
  for (const SdcLocation& l : locations_) {
    original_cell_.push_back(nl_->gate(l.gate).cell);
  }
}

void SdcEmbedder::apply(std::size_t loc, int option) {
  ODCFP_CHECK(loc < locations_.size());
  const SdcLocation& L = locations_[loc];
  ODCFP_CHECK_MSG(option >= 1 && option <=
                      static_cast<int>(L.alternatives.size()),
                  "option out of range");
  ODCFP_CHECK_MSG(state_[loc] == 0, "location already modified");
  nl_->rewire_gate(L.gate,
                   L.alternatives[static_cast<std::size_t>(option - 1)],
                   nl_->gate(L.gate).fanins);
  state_[loc] = option;
}

void SdcEmbedder::remove(std::size_t loc) {
  ODCFP_CHECK(loc < locations_.size());
  if (state_[loc] == 0) return;
  nl_->rewire_gate(locations_[loc].gate, original_cell_[loc],
                   nl_->gate(locations_[loc].gate).fanins);
  state_[loc] = 0;
}

int SdcEmbedder::applied_option(std::size_t loc) const {
  ODCFP_CHECK(loc < locations_.size());
  return state_[loc];
}

void SdcEmbedder::apply_code(const std::vector<std::uint8_t>& code) {
  ODCFP_CHECK(code.size() == locations_.size());
  for (std::size_t i = 0; i < code.size(); ++i) {
    remove(i);
    if (code[i] != 0) apply(i, code[i]);
  }
}

std::vector<std::uint8_t> SdcEmbedder::current_code() const {
  std::vector<std::uint8_t> code(locations_.size());
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    code[i] = static_cast<std::uint8_t>(state_[i]);
  }
  return code;
}

std::vector<std::uint8_t> extract_sdc_code(
    const Netlist& fingerprinted, const Netlist& golden,
    const std::vector<SdcLocation>& locs) {
  std::vector<std::uint8_t> code(locs.size(), 0);
  for (std::size_t i = 0; i < locs.size(); ++i) {
    const std::string& name = golden.gate(locs[i].gate).name;
    const GateId g = fingerprinted.find_gate(name);
    ODCFP_CHECK_MSG(g != kInvalidGate,
                    "SDC gate '" << name << "' missing");
    const CellId cell = fingerprinted.gate(g).cell;
    if (cell == golden.gate(locs[i].gate).cell) continue;
    bool matched = false;
    for (std::size_t o = 0; o < locs[i].alternatives.size(); ++o) {
      if (locs[i].alternatives[o] == cell) {
        code[i] = static_cast<std::uint8_t>(o + 1);
        matched = true;
        break;
      }
    }
    ODCFP_CHECK_MSG(matched, "cell at '" << name
                                         << "' matches no alternative");
  }
  return code;
}

}  // namespace odcfp
