// Fingerprint embedding, removal, and extraction.
//
// A *code* assigns to every injection site of every location an option
// index: 0 leaves the site untouched, i >= 1 applies the site's option
// i-1. The embedder mutates a working netlist and keeps an undo log per
// site, so individual modifications can be removed in any order — the
// reactive overhead heuristic (paper §IV.B) depends on this.
//
// Mechanics of one injection (site gate f, literal L):
//  * if the library has a same-kind cell one input wider, f is *widened*
//    (INV becomes NAND2, BUF becomes AND2);
//  * otherwise a 2-input gate of f's identity class is *appended* on f's
//    output and f's former fanouts are moved to it.
// A complemented literal adds an inverter on the source net. Added gates
// are named with the kAddedGatePrefix / kInverterPrefix prefixes; nets and
// pre-existing gates keep their names, which is what makes designer-side
// extraction (compare against the unfingerprinted golden netlist, paper
// §III.E) purely structural.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "fingerprint/location.hpp"
#include "netlist/netlist.hpp"

namespace odcfp {

/// code[loc][site] in [0, 1 + options(site)).
using FingerprintCode = std::vector<std::vector<std::uint8_t>>;

inline constexpr const char* kAddedGatePrefix = "fp_add_";
inline constexpr const char* kInverterPrefix = "fp_inv_";

/// An all-zero (blank) code shaped like `locs`.
FingerprintCode blank_code(const std::vector<FingerprintLocation>& locs);

class FingerprintEmbedder {
 public:
  /// The embedder keeps a reference to `nl` and mutates it in place.
  FingerprintEmbedder(Netlist& nl,
                      std::vector<FingerprintLocation> locations);

  const std::vector<FingerprintLocation>& locations() const {
    return locations_;
  }
  const Netlist& netlist() const { return *nl_; }

  std::size_t num_sites() const { return flat_sites_.size(); }

  /// Flat site index -> (location, site) pair.
  struct SiteRef {
    std::size_t loc;
    std::size_t site;
  };
  SiteRef site_ref(std::size_t flat_index) const;

  /// Currently applied option at a site (0 = none).
  int applied_option(std::size_t loc, std::size_t site) const;

  /// Applies option `option` (1-based) at the site; the site must be
  /// currently unmodified.
  void apply(std::size_t loc, std::size_t site, int option);

  /// Undoes whatever is applied at the site (no-op if nothing is).
  void remove(std::size_t loc, std::size_t site);

  /// Applies a full code (removing any current modifications first).
  void apply_code(const FingerprintCode& code);

  /// Applies option 1 (the generic Fig. 4 injection) at every site — the
  /// paper's "maximum fingerprint" configuration measured in Table II.
  void apply_all_generic();

  void remove_all();

  std::size_t num_applied() const { return num_applied_; }

  /// The currently applied code.
  FingerprintCode current_code() const;

  /// Gates whose structure/loading the applied modification at this site
  /// touches: the site gate plus any added inverter/append gates. Empty if
  /// the site is unmodified. Used by the heuristics to restrict trial
  /// removals to modifications that can affect the critical path.
  std::vector<GateId> touched_gates(std::size_t loc, std::size_t site) const;

 private:
  struct Op {
    enum class Kind : std::uint8_t { kWiden, kAddGate, kTransfer };
    Kind kind;
    GateId gate = kInvalidGate;       // kWiden / kAddGate
    CellId old_cell = kInvalidCell;   // kWiden
    NetId from = kInvalidNet;         // kTransfer
    NetId to = kInvalidNet;           // kTransfer
  };
  struct SiteState {
    int option = 0;
    std::vector<Op> ops;
  };

  NetId literal_net(NetId source, bool invert, std::vector<Op>& ops);
  void inject_literal(GateId site_gate, InjectClass cls, NetId lit,
                      std::vector<Op>& ops);
  /// Reverts `ops` (newest first); shared by remove() and the
  /// exception-unwind path of apply().
  void undo_ops(const std::vector<Op>& ops);
  /// The current output net of the site gate's modification chain (after
  /// appends, the appended gate's output).
  NetId chain_output(GateId site_gate) const;

  Netlist* nl_;
  std::vector<FingerprintLocation> locations_;
  std::vector<std::vector<SiteState>> state_;  // [loc][site]
  std::vector<SiteRef> flat_sites_;
  std::unordered_set<GateId> site_gates_;
  std::size_t num_applied_ = 0;
#ifndef NDEBUG
  /// structural_signature of the netlist at construction; remove_all()
  /// asserts full restoration against it in debug builds.
  std::string pristine_signature_;
#endif
};

/// Finds a pre-existing (non-fingerprint, non-site) inverter driven by
/// `source`, returning its output net; kInvalidNet if none. Shared by the
/// embedder (reuse instead of adding an inverter) and the extractor
/// (predicting that reuse from the golden netlist).
NetId find_reusable_inverter(const Netlist& nl, NetId source,
                             const std::unordered_set<GateId>& site_gates);

/// Recovers the embedded code by structurally comparing a fingerprinted
/// netlist against the golden netlist the locations were computed on.
/// Gates and nets are matched by name. Throws CheckError if the
/// fingerprinted netlist contains modifications that match no option.
FingerprintCode extract_code(const Netlist& fingerprinted,
                             const Netlist& golden,
                             const std::vector<FingerprintLocation>& locs);

/// Per-site verdict of the lenient extractor.
enum class SiteReadStatus : std::uint8_t {
  kRecovered,   ///< Site matched an option (or the unmodified form).
  kSiteMissing, ///< The site gate no longer exists (e.g. resynthesized).
  kUnknownMod,  ///< The site exists but matches no known option.
};

struct LenientExtraction {
  FingerprintCode code;                   ///< 0 where not recovered.
  std::vector<std::vector<SiteReadStatus>> status;  ///< [loc][site]
  std::size_t recovered = 0;
  std::size_t damaged = 0;  ///< missing + unknown
};

/// Like extract_code but tolerates tampering/resynthesis: sites whose
/// structure was destroyed are reported instead of throwing. Used for
/// the attack-robustness analysis (paper §III.E: tracing works while the
/// attacker "does not remove all the fingerprint information").
LenientExtraction extract_code_lenient(
    const Netlist& fingerprinted, const Netlist& golden,
    const std::vector<FingerprintLocation>& locs);

}  // namespace odcfp
