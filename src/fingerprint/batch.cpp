#include "fingerprint/batch.hpp"

#include <utility>

#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"

namespace odcfp {

namespace {

/// Per-buyer seed stream: a fixed function of the base seed and the
/// buyer index (never of scheduling order). The multiplier keeps buyer 0
/// from collapsing onto the base seed itself.
std::uint64_t derive_seed(std::uint64_t base, std::size_t buyer) {
  Rng mix(base ^ (0x9e3779b97f4a7c15ull *
                  (static_cast<std::uint64_t>(buyer) + 1)));
  return mix.next_u64();
}

/// Stamps one buyer edition: clone, embed site-by-site with incremental
/// arrival maintenance, measure. Pure function of (golden, book, buyer).
BuyerEdition make_edition(const Netlist& golden, const Codebook& book,
                          std::size_t buyer, const Baseline& baseline,
                          const StaticTimingAnalyzer& sta,
                          const PowerAnalyzer& power,
                          const BatchOptions& options) {
  BuyerEdition edition;
  edition.buyer = buyer;
  edition.seed = derive_seed(options.seed, buyer);
  edition.code = book.code(buyer);
  edition.netlist = golden;  // private clone: workers never share state

  FingerprintEmbedder embedder(edition.netlist, book.locations());
  ArrivalTracker tracker(edition.netlist, sta);
  for (std::size_t l = 0; l < edition.code.size(); ++l) {
    for (std::size_t s = 0; s < edition.code[l].size(); ++s) {
      const int option = edition.code[l][s];
      if (option == 0) continue;
      embedder.apply(l, s, option);
      tracker.update(
          timing_seeds(edition.netlist, embedder.touched_gates(l, s)));
    }
  }

  edition.critical_delay = tracker.critical_delay();
  edition.overheads =
      Overheads::measure(edition.netlist, baseline, sta, power);
  if (options.max_delay_overhead > 0 &&
      edition.overheads.delay_ratio > options.max_delay_overhead) {
    edition.status = Status::kInfeasible;
  }
  return edition;
}

}  // namespace

BatchResult batch_fingerprint(const Netlist& golden, const Codebook& book,
                              const StaticTimingAnalyzer& sta,
                              const PowerAnalyzer& power,
                              const BatchOptions& options) {
  TELEM_SPAN("batch_fingerprint");
  BatchResult result;
  result.baseline = Baseline::measure(golden, sta, power);

  // Pre-fill the skipped-edition marker so slots the pool never reaches
  // (shared budget died) read as kExhausted, not as stamped editions.
  result.editions.resize(book.num_buyers());
  for (std::size_t b = 0; b < result.editions.size(); ++b) {
    result.editions[b].buyer = b;
    result.editions[b].seed = derive_seed(options.seed, b);
    result.editions[b].status = Status::kExhausted;
  }

  const std::vector<const char*> tpath = telemetry::current_path();
  const Status loop_status = parallel_for(
      options.pool, book.num_buyers(),
      [&](std::size_t b) {
        // Re-root each buyer's spans under batch_fingerprint regardless
        // of which pool worker stamps it.
        const telemetry::AttachScope attach(tpath);
        TELEM_SPAN("batch_fingerprint.edition");
        result.editions[b] = make_edition(golden, book, b, result.baseline,
                                          sta, power, options);
        TELEM_COUNT("batch.editions_stamped", 1);
      },
      options.budget);

  result.status = loop_status;
  if (result.status == Status::kExhausted && options.budget != nullptr) {
    result.exhausted_at = options.budget->died_in();
  }
  if (result.status == Status::kOk) {
    for (const BuyerEdition& e : result.editions) {
      if (e.status == Status::kInfeasible) {
        result.status = Status::kInfeasible;
        break;
      }
    }
  }
  std::size_t stamped = 0;
  for (const BuyerEdition& e : result.editions) {
    if (e.status != Status::kExhausted) ++stamped;
  }
  log::info("batch.fingerprint.done")
      .field("buyers", book.num_buyers())
      .field("stamped", stamped)
      .field("status", to_string(result.status))
      .field("died_in",
             result.exhausted_at != nullptr ? result.exhausted_at : "");
  return result;
}

std::vector<Outcome<CecResult>> batch_verify_equivalence(
    const Netlist& golden, const std::vector<BuyerEdition>& editions,
    const BatchCecOptions& options) {
  TELEM_SPAN("batch_verify");
  std::vector<Outcome<CecResult>> verdicts(
      editions.size(),
      Outcome<CecResult>::exhausted("edition skipped: batch budget died"));

  const std::vector<const char*> tpath = telemetry::current_path();
  parallel_for(
      options.pool, editions.size(),
      [&](std::size_t i) {
        const telemetry::AttachScope attach(tpath);
        const BuyerEdition& e = editions[i];
        if (e.status == Status::kExhausted) {
          verdicts[i] = Outcome<CecResult>::exhausted(
              "edition was never stamped (batch budget died)");
          return;
        }
        BudgetedCecOptions cec = options.cec;
        cec.seed = e.seed;  // per-buyer stream, not per-worker
        verdicts[i] =
            verify_equivalence_budgeted(golden, e.netlist,
                                        options.budget, cec);
      },
      options.budget);
  std::size_t proven = 0, exhausted = 0;
  for (const Outcome<CecResult>& v : verdicts) {
    if (v.ok()) {
      ++proven;
    } else if (v.status() == Status::kExhausted) {
      ++exhausted;
    }
  }
  log::info("batch.verify.done")
      .field("editions", editions.size())
      .field("proven", proven)
      .field("exhausted", exhausted);
  return verdicts;
}

}  // namespace odcfp
