#include "fingerprint/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/atomic_io.hpp"
#include "common/check.hpp"
#include "common/journal.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "fingerprint/embedder.hpp"
#include "io/blif.hpp"
#include "netlist/netlist.hpp"

namespace odcfp {

namespace {

/// Per-buyer seed stream: a fixed function of the base seed and the
/// buyer index (never of scheduling order). The multiplier keeps buyer 0
/// from collapsing onto the base seed itself.
std::uint64_t derive_seed(std::uint64_t base, std::size_t buyer) {
  Rng mix(base ^ (0x9e3779b97f4a7c15ull *
                  (static_cast<std::uint64_t>(buyer) + 1)));
  return mix.next_u64();
}

/// Stamps one buyer edition: clone, embed site-by-site with incremental
/// arrival maintenance, measure. Pure function of (golden, book, buyer).
BuyerEdition make_edition(const Netlist& golden, const CodebookSource& book,
                          std::size_t buyer, const Baseline& baseline,
                          const StaticTimingAnalyzer& sta,
                          const PowerAnalyzer& power,
                          const BatchOptions& options) {
  BuyerEdition edition;
  edition.buyer = buyer;
  edition.seed = derive_seed(options.seed, buyer);
  edition.code = book.code_of(buyer);
  edition.netlist = golden;  // private clone: workers never share state

  FingerprintEmbedder embedder(edition.netlist, book.locations());
  ArrivalTracker tracker(edition.netlist, sta);
  for (std::size_t l = 0; l < edition.code.size(); ++l) {
    for (std::size_t s = 0; s < edition.code[l].size(); ++s) {
      const int option = edition.code[l][s];
      if (option == 0) continue;
      embedder.apply(l, s, option);
      tracker.update(
          timing_seeds(edition.netlist, embedder.touched_gates(l, s)));
    }
  }

  edition.critical_delay = tracker.critical_delay();
  edition.overheads =
      Overheads::measure(edition.netlist, baseline, sta, power);
  if (options.max_delay_overhead > 0 &&
      edition.overheads.delay_ratio > options.max_delay_overhead) {
    edition.status = Status::kInfeasible;
  }
  return edition;
}

}  // namespace

BatchResult batch_fingerprint(const Netlist& golden, const CodebookSource& book,
                              const StaticTimingAnalyzer& sta,
                              const PowerAnalyzer& power,
                              const BatchOptions& options) {
  TELEM_SPAN("batch_fingerprint");
  BatchResult result;
  result.baseline = Baseline::measure(golden, sta, power);

  // Pre-fill the skipped-edition marker so slots the pool never reaches
  // (shared budget died) read as kExhausted, not as stamped editions.
  result.editions.resize(book.num_buyers());
  for (std::size_t b = 0; b < result.editions.size(); ++b) {
    result.editions[b].buyer = b;
    result.editions[b].seed = derive_seed(options.seed, b);
    result.editions[b].status = Status::kExhausted;
  }

  const std::vector<const char*> tpath = telemetry::current_path();
  const Status loop_status = parallel_for(
      options.pool, book.num_buyers(),
      [&](std::size_t b) {
        // Re-root each buyer's spans under batch_fingerprint regardless
        // of which pool worker stamps it.
        const telemetry::AttachScope attach(tpath);
        TELEM_SPAN("batch_fingerprint.edition");
        TELEM_HIST_TIMER("batch.edition_ns");
        result.editions[b] = make_edition(golden, book, b, result.baseline,
                                          sta, power, options);
        TELEM_COUNT("batch.editions_stamped", 1);
      },
      options.budget);

  result.status = loop_status;
  if (result.status == Status::kExhausted && options.budget != nullptr) {
    result.exhausted_at = options.budget->died_in();
  }
  if (result.status == Status::kOk) {
    for (const BuyerEdition& e : result.editions) {
      if (e.status == Status::kInfeasible) {
        result.status = Status::kInfeasible;
        break;
      }
    }
  }
  std::size_t stamped = 0;
  for (const BuyerEdition& e : result.editions) {
    if (e.status != Status::kExhausted) ++stamped;
  }
  log::info("batch.fingerprint.done")
      .field("buyers", book.num_buyers())
      .field("stamped", stamped)
      .field("status", to_string(result.status))
      .field("died_in",
             result.exhausted_at != nullptr ? result.exhausted_at : "");
  return result;
}

// ------------------------------------------------- crash-safe resume

namespace {

std::string edition_artifact_path(const std::string& dir,
                                  std::size_t buyer) {
  return dir + "/edition_" + std::to_string(buyer) + ".blif";
}

/// Checksum of everything that determines the editions' bytes besides
/// the base seed: golden structure, codebook contents, delay constraint.
/// A resumed run whose config checksum differs would silently produce
/// different artifacts, so the journal header pins it.
std::uint32_t run_config_crc(const Netlist& golden, const CodebookSource& book,
                             const BatchOptions& options) {
  // Streaming digest: one codeword in flight at a time, so a
  // million-buyer StreamingCodebook never materializes here either.
  // Byte stream (and thus CRC) identical to the old whole-string form.
  atomic_io::Crc32 crc;
  {
    std::ostringstream os;
    os << structural_signature(golden)
       << "|buyers=" << book.num_buyers()
       << "|delay=" << options.max_delay_overhead << "|codes=";
    crc.update(os.str());
  }
  for (std::size_t b = 0; b < book.num_buyers(); ++b) {
    std::ostringstream os;
    for (const auto& per_loc : book.code_of(b)) {
      for (const std::uint8_t v : per_loc) {
        os << static_cast<int>(v) << ',';
      }
      os << ';';
    }
    os << '/';
    crc.update(os.str());
  }
  return crc.value();
}

/// Sidecar liveness ticker: appends a heartbeat record to the journal
/// every `interval_ms` until stopped. Appends serialize on the journal's
/// internal mutex, so the ticker can run alongside pool workers.
class HeartbeatTicker {
 public:
  HeartbeatTicker(Journal* journal, std::int64_t interval_ms,
                  std::function<void()> on_beat = {}) {
    if (interval_ms <= 0) return;
    thread_ = std::thread([this, journal, interval_ms,
                           on_beat = std::move(on_beat)] {
      std::uint64_t beat = 0;
      std::unique_lock<std::mutex> lock(mu_);
      while (!stop_) {
        lock.unlock();
        journal->heartbeat(++beat);
        if (on_beat) on_beat();
        lock.lock();
        cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                     [this] { return stop_; });
      }
    });
  }

  ~HeartbeatTicker() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace

ResumableBatchResult batch_fingerprint_resumable(
    const std::string& journal_path, const Netlist& golden,
    const CodebookSource& book, const StaticTimingAnalyzer& sta,
    const PowerAnalyzer& power, const ResumeOptions& options) {
  TELEM_SPAN("batch_fingerprint_resumable");
  const auto run_t0 = std::chrono::steady_clock::now();
  ResumableBatchResult rr;
  rr.journal_path = journal_path;
  const std::size_t n = book.num_buyers();
  rr.artifacts.assign(n, "");

  const auto fail = [&rr](std::string msg) -> ResumableBatchResult& {
    rr.status = Status::kMalformedInput;
    rr.batch.status = Status::kMalformedInput;
    rr.message = std::move(msg);
    log::error("batch.resumable.rejected").field("reason", rr.message);
    return rr;
  };
  // The buyer range this process owns ([0, n) unless sharded).
  const std::size_t rb = options.range_begin;
  const std::size_t re = options.range_end == 0 ? n : options.range_end;
  if (re > n || (n > 0 && rb >= re)) {
    std::ostringstream os;
    os << "invalid shard range [" << rb << ", " << re << ") for " << n
       << " buyer(s)";
    return fail(os.str());
  }
  if (options.artifact_dir.empty()) {
    return fail("ResumeOptions::artifact_dir must be set");
  }
  if (!atomic_io::make_dirs(options.artifact_dir)) {
    return fail("cannot create artifact dir '" + options.artifact_dir +
                "'");
  }

  BatchOptions bo = options.batch;
  const std::uint32_t config_crc = run_config_crc(golden, book, bo);
  std::vector<BuyerPhase> phases(n, BuyerPhase::kQueued);
  std::vector<std::string> committed_path(n);
  std::vector<std::uint32_t> committed_crc(n, 0);
  Journal journal;
  bool fresh = true;

  if (atomic_io::exists(journal_path)) {
    Outcome<JournalReplay> replayed = read_journal(journal_path);
    if (!replayed.ok()) return fail(replayed.message());
    const JournalReplay& replay = replayed.value();
    if (replay.has_header) {
      if (replay.header.num_buyers != n ||
          replay.header.config_crc != config_crc) {
        return fail("journal '" + journal_path +
                    "' belongs to a different run (codebook, golden "
                    "netlist, or delay constraint mismatch)");
      }
      if (replay.header.seed != bo.seed) {
        // The journal is authoritative: per-buyer seeds re-derive from
        // its header so resumed editions can never diverge from the
        // artifacts already committed.
        log::warn("batch.resume.seed_override")
            .field("journal_seed", replay.header.seed)
            .field("requested_seed", bo.seed);
        bo.seed = replay.header.seed;
      }
      phases = replay.phase_of(n);
      for (std::size_t b = rb; b < re; ++b) {
        if (phases[b] != BuyerPhase::kCommitted) continue;
        const JournalEntry* e = replay.committed(b);
        committed_path[b] = e->artifact;
        committed_crc[b] = e->artifact_crc;
      }
      Outcome<Journal> opened = Journal::append_to(journal_path, replay);
      if (!opened.ok()) return fail(opened.message());
      journal = std::move(opened).value();
      fresh = false;
      log::info("batch.resume.journal_replayed")
          .field("path", journal_path)
          .field("records", replay.entries.size())
          .field("torn_tail", replay.torn_tail);
    }
    // No durable header: the crashed run never started real work —
    // recreate the journal from scratch below.
  }
  JournalHeader header;
  header.seed = bo.seed;
  header.num_buyers = n;
  header.config_crc = config_crc;
  header.label = options.label;
  if (fresh) {
    Outcome<Journal> created = Journal::create(journal_path, header);
    if (!created.ok()) return fail(created.message());
    journal = std::move(created).value();
  }

  atomic_io::remove_stale_temps(options.artifact_dir);

  // Trust no committed record without its artifact: the bytes must be
  // present at the final path with the checksum recorded at commit time,
  // else the buyer is demoted and re-stamped (idempotent by design).
  std::vector<char> recovered(n, 0);
  for (std::size_t b = rb; b < re; ++b) {
    if (phases[b] != BuyerPhase::kCommitted) continue;
    std::string bytes;
    if (atomic_io::read_file(committed_path[b], &bytes) &&
        atomic_io::crc32(bytes) == committed_crc[b]) {
      recovered[b] = 1;
    } else {
      phases[b] = BuyerPhase::kQueued;
      log::warn("batch.resume.artifact_demoted")
          .field("buyer", b)
          .field("artifact", committed_path[b]);
    }
  }
  if (fresh) {
    // Roster records: every buyer of this range enters the journal as
    // queued, so a crash before any edition finishes still leaves the
    // run's scope on disk. Failures here are advisory — commit records
    // are what gate.
    for (std::size_t b = rb; b < re; ++b) {
      journal.append(b, BuyerPhase::kQueued);
    }
  }

  rr.batch.baseline = Baseline::measure(golden, sta, power);
  rr.batch.editions.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    rr.batch.editions[b].buyer = b;
    rr.batch.editions[b].seed = derive_seed(bo.seed, b);
    rr.batch.editions[b].status = Status::kExhausted;
  }

  std::atomic<std::size_t> total_retries{0};
  std::atomic<std::size_t> recovered_count{0};
  std::atomic<std::size_t> committed_count{0};
  // Progress reports: from the heartbeat thread while the loop runs and
  // once (final) from this thread after it joins. The counts are the
  // commit-protocol's own, so a report can never claim a buyer whose
  // artifact is not already durable.
  const auto report_progress = [&](bool final_report) {
    if (!options.progress) return;
    BatchProgress p;
    p.range_begin = rb;
    p.range_end = re;
    p.committed = committed_count.load(std::memory_order_relaxed);
    p.recovered = recovered_count.load(std::memory_order_relaxed);
    p.elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - run_t0)
                       .count();
    p.final = final_report;
    options.progress(p);
  };

  const std::vector<const char*> tpath = telemetry::current_path();
  Status loop_status = Status::kOk;
  {
    // Liveness sidecar for supervised shard workers: joined (and thus
    // silent) before the final progress report and the journal close.
    HeartbeatTicker ticker(&journal, options.heartbeat_interval_ms,
                           [&] { report_progress(false); });
    loop_status = parallel_for(
      bo.pool, re - rb,
      [&](std::size_t i) {
        const std::size_t b = rb + i;
        const telemetry::AttachScope attach(tpath);
        TELEM_SPAN("batch_fingerprint.edition");
        BuyerEdition& slot = rr.batch.editions[b];
        if (recovered[b]) {
          slot.status = Status::kOk;
          slot.code = book.code_of(b);
          rr.artifacts[b] = committed_path[b];
          recovered_count.fetch_add(1, std::memory_order_relaxed);
          committed_count.fetch_add(1, std::memory_order_relaxed);
          TELEM_COUNT("batch.editions_recovered", 1);
          return;
        }
        TELEM_HIST_TIMER("batch.edition_ns");
        const std::string path =
            edition_artifact_path(options.artifact_dir, b);
        journal.append(b, BuyerPhase::kEmbedding);
        RetryPolicy rp = options.retry;
        rp.seed ^= slot.seed;  // per-buyer schedule, scheduling-free
        if (rp.budget == nullptr) rp.budget = bo.budget;
        BuyerEdition edition;
        std::string permanent_error;
        const RetryStats rs = retry_with_backoff(
            "batch.edition", rp, [&](int) -> Status {
              edition = make_edition(golden, book, b, rr.batch.baseline,
                                     sta, power, bo);
              // The delay-overhead verdict gates BEFORE publishing: a
              // constraint-violating edition must never be committed, or
              // a resume would recover it as kOk and disagree with an
              // uninterrupted run about the batch's feasibility.
              if (edition.status == Status::kInfeasible) {
                permanent_error = "delay overhead constraint violated";
                return Status::kInfeasible;
              }
              // Idempotency gate before publishing: the stamped clone
              // must decode back to exactly this buyer's codeword.
              if (extract_code(edition.netlist, golden,
                               book.locations()) != edition.code) {
                permanent_error =
                    "extracted code does not match the codeword";
                return Status::kInfeasible;
              }
              if (!journal.append(b, BuyerPhase::kVerified)) {
                return Status::kExhausted;
              }
              const std::string blif = to_blif_string(edition.netlist);
              if (!atomic_io::write_file_atomic(path, blif).ok) {
                return Status::kExhausted;
              }
              if (!journal.append(b, BuyerPhase::kCommitted, path,
                                  atomic_io::crc32(blif))) {
                return Status::kExhausted;
              }
              return Status::kOk;
            });
        total_retries.fetch_add(rs.backoff_ms.size(),
                                std::memory_order_relaxed);
        if (rs.status == Status::kOk) {
          rr.batch.editions[b] = std::move(edition);
          rr.artifacts[b] = path;
          committed_count.fetch_add(1, std::memory_order_relaxed);
          TELEM_COUNT("batch.editions_stamped", 1);
        } else if (rs.status != Status::kExhausted) {
          // Permanent failure: recorded so a resume retries it last, and
          // surfaced on the edition (kExhausted slots stay resumable).
          journal.append(b, BuyerPhase::kFailed);
          slot.status = rs.status;
          log::error("batch.edition.failed")
              .field("buyer", b)
              .field("status", to_string(rs.status))
              .field("error", permanent_error.empty() ? rs.last_error
                                                      : permanent_error);
        }
        // rs.status == kExhausted leaves the prefilled kExhausted slot:
        // the journal still says embedding/verified, so the next resume
        // picks this buyer up again.
      },
      bo.budget);
  }
  report_progress(/*final_report=*/true);

  rr.recovered = recovered_count.load();
  rr.retries = total_retries.load();
  rr.batch.status = loop_status;
  if (loop_status == Status::kExhausted && bo.budget != nullptr) {
    rr.batch.exhausted_at = bo.budget->died_in();
  }
  // Slots outside [rb, re) keep their prefilled kExhausted status but are
  // someone else's shard — only this range gates pending/ok.
  std::size_t pending = 0, stamped = 0;
  for (std::size_t b = rb; b < re; ++b) {
    if (rr.batch.editions[b].status == Status::kExhausted) ++pending;
    else ++stamped;
  }
  if (pending > 0) {
    rr.status = Status::kExhausted;
    std::ostringstream os;
    os << pending << " buyer(s) pending; rerun with journal '"
       << journal_path << "' to resume";
    rr.message = os.str();
    rr.batch.status = Status::kExhausted;
  } else {
    rr.status = Status::kOk;
    rr.batch.status = Status::kOk;
    for (std::size_t b = rb; b < re; ++b) {
      if (rr.batch.editions[b].status == Status::kInfeasible) {
        rr.status = Status::kInfeasible;
        rr.batch.status = Status::kInfeasible;
        break;
      }
    }
  }
  log::info("batch.resumable.done")
      .field("buyers", re - rb)
      .field("recovered", rr.recovered)
      .field("stamped", stamped - rr.recovered)
      .field("pending", pending)
      .field("retries", rr.retries)
      .field("journal", journal_path)
      .field("status", to_string(rr.status));
  return rr;
}

namespace {

/// One edition through the incremental escalation chain: in-session
/// assumption solve, then the portfolio race, then the legacy budgeted
/// checker (whose simulation fallback owns the kExhausted confidence
/// accounting). Verdicts agree with the legacy path on every edition;
/// only the proof effort differs.
Outcome<CecResult> incremental_verify_one(const Netlist& golden,
                                          IncrementalCecSession& session,
                                          const BuyerEdition& e,
                                          const BatchCecOptions& options) {
  CecResult r = session.check(e.netlist, options.budget);
  if (r.status != CecResult::Status::kUnknown) {
    return Outcome<CecResult>::success(std::move(r));
  }
  TELEM_COUNT("cec.incremental.escalations", 1);
  if (!budget_exhausted(options.budget)) {
    CecResult p = check_equivalence_portfolio(
        golden, e.netlist, options.portfolio, options.budget);
    if (p.status != CecResult::Status::kUnknown) {
      return Outcome<CecResult>::success(std::move(p));
    }
  }
  BudgetedCecOptions cec = options.cec;
  cec.seed = e.seed;  // per-buyer stream, not per-worker
  return verify_equivalence_budgeted(golden, e.netlist, options.budget,
                                     cec);
}

}  // namespace

std::vector<Outcome<CecResult>> batch_verify_equivalence(
    const Netlist& golden, const std::vector<BuyerEdition>& editions,
    const BatchCecOptions& options) {
  TELEM_SPAN("batch_verify");
  std::vector<Outcome<CecResult>> verdicts(
      editions.size(),
      Outcome<CecResult>::exhausted("edition skipped: batch budget died"));

  const std::vector<const char*> tpath = telemetry::current_path();
  if (options.incremental) {
    // Chunk buyers into sessions by index only: session composition (and
    // therefore every solver's clause/heuristic history) is invariant to
    // the pool size, which is what keeps verdicts byte-identical at any
    // thread count.
    const std::size_t per_session =
        std::max<std::size_t>(1, options.session_buyers);
    const std::size_t num_sessions =
        (editions.size() + per_session - 1) / per_session;
    std::atomic<std::size_t> checks{0}, reused{0}, encoded{0};
    parallel_for(
        options.pool, num_sessions,
        [&](std::size_t s) {
          const telemetry::AttachScope attach(tpath);
          IncrementalCecSession::Options sopts;
          sopts.conflict_limit = options.session_conflict_limit >= 0
                                     ? options.session_conflict_limit
                                     : options.cec.sat_conflict_limit;
          IncrementalCecSession session(golden, sopts);
          const std::size_t begin = s * per_session;
          const std::size_t end =
              std::min(editions.size(), begin + per_session);
          for (std::size_t i = begin; i < end; ++i) {
            const BuyerEdition& e = editions[i];
            if (e.status == Status::kExhausted) {
              verdicts[i] = Outcome<CecResult>::exhausted(
                  "edition was never stamped (batch budget died)");
              continue;
            }
            // Leave the prefilled exhausted slot standing for editions
            // the dead budget never let us reach.
            if (budget_exhausted(options.budget)) break;
            try {
              TELEM_HIST_TIMER("cec.check_ns");
              verdicts[i] =
                  incremental_verify_one(golden, session, e, options);
            } catch (const CheckError& err) {
              verdicts[i] = Outcome<CecResult>::malformed(err.what());
            }
          }
          checks.fetch_add(session.checks(), std::memory_order_relaxed);
          reused.fetch_add(session.gates_reused(),
                           std::memory_order_relaxed);
          encoded.fetch_add(session.gates_encoded(),
                            std::memory_order_relaxed);
        },
        options.budget);
    // Emitted from the calling thread after the join, so the values are
    // whole-batch totals — deterministic at any thread count. The
    // encoded counter is the bench gate: a regression that silently
    // stops reusing the golden encoding inflates it and fails the
    // baseline diff; reuse_ratio (permille) states the same health as a
    // scale-free number.
    const std::size_t r = reused.load(), n = encoded.load();
    TELEM_COUNT("cec.incremental.checks",
                static_cast<std::int64_t>(checks.load()));
    TELEM_COUNT("cec.incremental.gates_reused",
                static_cast<std::int64_t>(r));
    TELEM_COUNT("cec.incremental.gates_encoded",
                static_cast<std::int64_t>(n));
    TELEM_COUNT("cec.incremental.reuse_ratio",
                r + n == 0 ? 0
                           : static_cast<std::int64_t>(
                                 r * 1000 / (r + n)));
  } else {
    parallel_for(
        options.pool, editions.size(),
        [&](std::size_t i) {
          const telemetry::AttachScope attach(tpath);
          const BuyerEdition& e = editions[i];
          if (e.status == Status::kExhausted) {
            verdicts[i] = Outcome<CecResult>::exhausted(
                "edition was never stamped (batch budget died)");
            return;
          }
          BudgetedCecOptions cec = options.cec;
          cec.seed = e.seed;  // per-buyer stream, not per-worker
          TELEM_HIST_TIMER("cec.check_ns");
          verdicts[i] =
              verify_equivalence_budgeted(golden, e.netlist,
                                          options.budget, cec);
        },
        options.budget);
  }
  std::size_t proven = 0, exhausted = 0;
  for (const Outcome<CecResult>& v : verdicts) {
    if (v.ok()) {
      ++proven;
    } else if (v.status() == Status::kExhausted) {
      ++exhausted;
    }
  }
  log::info("batch.verify.done")
      .field("editions", editions.size())
      .field("proven", proven)
      .field("exhausted", exhausted);
  return verdicts;
}

}  // namespace odcfp
