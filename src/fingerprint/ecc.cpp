#include "fingerprint/ecc.hpp"

#include "common/check.hpp"

namespace odcfp {

namespace {

/// Number of Hamming parity bits needed for `data_bits` data bits.
std::size_t hamming_parity_bits(std::size_t data_bits) {
  std::size_t r = 0;
  while ((std::size_t{1} << r) < data_bits + r + 1) ++r;
  return r;
}

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

std::size_t secded_coded_bits(std::size_t data_bits) {
  if (data_bits == 0) return 0;
  return data_bits + hamming_parity_bits(data_bits) + 1;  // + overall
}

std::size_t secded_max_data_bits(std::size_t coded_bits) {
  std::size_t k = 0;
  while (secded_coded_bits(k + 1) <= coded_bits) ++k;
  return k;
}

std::vector<bool> secded_encode(const std::vector<bool>& data) {
  const std::size_t k = data.size();
  if (k == 0) return {};
  const std::size_t r = hamming_parity_bits(k);
  const std::size_t n = k + r;  // Hamming codeword (1-indexed positions)

  std::vector<bool> word(n + 1, false);  // word[1..n]
  std::size_t di = 0;
  for (std::size_t pos = 1; pos <= n; ++pos) {
    if (!is_power_of_two(pos)) word[pos] = data[di++];
  }
  ODCFP_CHECK(di == k);
  for (std::size_t p = 0; (std::size_t{1} << p) <= n; ++p) {
    const std::size_t mask = std::size_t{1} << p;
    bool parity = false;
    for (std::size_t pos = 1; pos <= n; ++pos) {
      if ((pos & mask) && !is_power_of_two(pos)) {
        parity ^= word[pos];
      }
    }
    word[mask] = parity;
  }
  std::vector<bool> coded(word.begin() + 1, word.end());
  bool overall = false;
  for (bool b : coded) overall ^= b;
  coded.push_back(overall);  // extended (SECDED) bit
  return coded;
}

std::optional<std::vector<bool>> secded_decode(std::vector<bool> coded,
                                               std::size_t data_bits,
                                               bool* corrected) {
  if (corrected != nullptr) *corrected = false;
  if (data_bits == 0) return std::vector<bool>{};
  const std::size_t r = hamming_parity_bits(data_bits);
  const std::size_t n = data_bits + r;
  ODCFP_CHECK_MSG(coded.size() == n + 1, "SECDED length mismatch");

  bool overall = false;
  for (bool b : coded) overall ^= b;

  std::size_t syndrome = 0;
  for (std::size_t p = 0; (std::size_t{1} << p) <= n; ++p) {
    const std::size_t mask = std::size_t{1} << p;
    bool parity = false;
    for (std::size_t pos = 1; pos <= n; ++pos) {
      if (pos & mask) parity ^= coded[pos - 1];
    }
    if (parity) syndrome |= mask;
  }

  if (syndrome != 0) {
    if (!overall) return std::nullopt;  // double error detected
    ODCFP_CHECK_MSG(syndrome <= n, "SECDED syndrome out of range");
    coded[syndrome - 1] = !coded[syndrome - 1];
    if (corrected != nullptr) *corrected = true;
  }
  // syndrome == 0 with overall parity set means the extended bit itself
  // flipped; the data is intact either way.

  std::vector<bool> data;
  data.reserve(data_bits);
  for (std::size_t pos = 1; pos <= n; ++pos) {
    if (!is_power_of_two(pos)) data.push_back(coded[pos - 1]);
  }
  return data;
}

std::size_t ecc_payload_bits(const std::vector<FingerprintLocation>& locs,
                             const EccParams& params) {
  ODCFP_CHECK(params.repetition >= 1);
  const std::size_t capacity =
      usable_bits(locs) / static_cast<std::size_t>(params.repetition);
  return secded_max_data_bits(capacity);
}

FingerprintCode ecc_encode(const std::vector<FingerprintLocation>& locs,
                           const std::vector<bool>& payload,
                           const EccParams& params) {
  ODCFP_CHECK_MSG(payload.size() == ecc_payload_bits(locs, params),
                  "payload must be exactly ecc_payload_bits() long");
  const std::vector<bool> coded = secded_encode(payload);
  std::vector<bool> bits(usable_bits(locs), false);
  // Interleave the r copies: copy c of coded bit i lands at
  // c * coded.size() + i, spreading each repetition group across the
  // circuit so localized tampering hits distinct groups.
  for (int c = 0; c < params.repetition; ++c) {
    for (std::size_t i = 0; i < coded.size(); ++i) {
      bits[static_cast<std::size_t>(c) * coded.size() + i] = coded[i];
    }
  }
  return encode_bits(locs, bits);
}

std::optional<EccDecodeResult> ecc_decode(
    const std::vector<FingerprintLocation>& locs,
    const FingerprintCode& code, const EccParams& params) {
  const std::size_t k = ecc_payload_bits(locs, params);
  if (k == 0) return std::nullopt;
  const std::size_t coded_len = secded_coded_bits(k);
  const std::vector<bool> bits = decode_bits(locs, code);

  EccDecodeResult result;
  std::vector<bool> coded(coded_len, false);
  for (std::size_t i = 0; i < coded_len; ++i) {
    int votes = 0;
    for (int c = 0; c < params.repetition; ++c) {
      if (bits[static_cast<std::size_t>(c) * coded_len + i]) ++votes;
    }
    coded[i] = 2 * votes > params.repetition;
    // Count positions where some copy was out-voted.
    if (votes != 0 && votes != params.repetition) {
      ++result.repetition_corrections;
    }
  }
  bool corrected = false;
  auto data = secded_decode(std::move(coded), k, &corrected);
  if (!data.has_value()) {
    EccDecodeResult fail;
    fail.double_error_detected = true;
    return std::nullopt;
  }
  result.payload = std::move(*data);
  result.hamming_corrected = corrected;
  return result;
}

}  // namespace odcfp
