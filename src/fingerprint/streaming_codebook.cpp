#include "fingerprint/streaming_codebook.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace odcfp {

StreamingCodebook::StreamingCodebook(
    const std::vector<FingerprintLocation>& locs, std::size_t num_buyers,
    std::uint64_t seed)
    : locs_(&locs), num_buyers_(num_buyers) {
  ODCFP_CHECK_MSG(static_cast<std::uint64_t>(num_buyers) <= capacity(locs),
                  "streaming codebook capacity "
                      << capacity(locs) << " cannot serve " << num_buyers
                      << " buyer(s)");
  const std::size_t nbits = usable_bits(locs);
  keystream_.resize(nbits);
  Rng rng(seed);
  for (std::size_t i = 0; i < nbits; ++i) keystream_[i] = rng.next_bool();
}

std::uint64_t StreamingCodebook::capacity(
    const std::vector<FingerprintLocation>& locs) {
  const std::size_t nbits = usable_bits(locs);
  if (nbits >= 63) return std::uint64_t{1} << 63;
  return std::uint64_t{1} << nbits;
}

FingerprintCode StreamingCodebook::code_of(std::size_t buyer) const {
  ODCFP_CHECK(buyer < num_buyers_);
  std::vector<bool> bits(keystream_.begin(), keystream_.end());
  // Low-order buyer bits land on the trailing capacity bits; XOR against
  // the keystream keeps the map bijective, hence codewords distinct.
  const std::uint64_t b = buyer;
  for (std::size_t i = 0; i < bits.size() && i < 64; ++i) {
    if ((b >> i) & 1u) {
      const std::size_t pos = bits.size() - 1 - i;
      bits[pos] = !bits[pos];
    }
  }
  return encode_bits(*locs_, bits);
}

}  // namespace odcfp
