#include "fingerprint/codewords.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.hpp"

namespace odcfp {

namespace {

/// floor(log2(1 + options)) for one site.
std::size_t site_usable_bits(const InjectionSite& s) {
  std::size_t radix = 1 + s.options.size();
  std::size_t bits = 0;
  while (radix >= 2) {
    radix >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

std::size_t usable_bits(const std::vector<FingerprintLocation>& locs) {
  std::size_t bits = 0;
  for (const auto& l : locs) {
    for (const auto& s : l.sites) bits += site_usable_bits(s);
  }
  return bits;
}

FingerprintCode encode_bits(const std::vector<FingerprintLocation>& locs,
                            const std::vector<bool>& bits) {
  ODCFP_CHECK_MSG(bits.size() == usable_bits(locs),
                  "bitstring length " << bits.size() << " != capacity "
                                      << usable_bits(locs));
  FingerprintCode code = blank_code(locs);
  std::size_t pos = 0;
  for (std::size_t l = 0; l < locs.size(); ++l) {
    for (std::size_t s = 0; s < locs[l].sites.size(); ++s) {
      const std::size_t nb = site_usable_bits(locs[l].sites[s]);
      std::size_t value = 0;
      for (std::size_t b = 0; b < nb; ++b) {
        value = (value << 1) | static_cast<std::size_t>(bits[pos++]);
      }
      code[l][s] = static_cast<std::uint8_t>(value);
    }
  }
  return code;
}

std::vector<bool> decode_bits(const std::vector<FingerprintLocation>& locs,
                              const FingerprintCode& code) {
  ODCFP_CHECK(code.size() == locs.size());
  std::vector<bool> bits;
  for (std::size_t l = 0; l < locs.size(); ++l) {
    ODCFP_CHECK(code[l].size() == locs[l].sites.size());
    for (std::size_t s = 0; s < locs[l].sites.size(); ++s) {
      const std::size_t nb = site_usable_bits(locs[l].sites[s]);
      const std::size_t value = code[l][s];
      ODCFP_CHECK_MSG(value < (std::size_t{1} << nb),
                      "option value exceeds the encodable range");
      for (std::size_t b = nb; b-- > 0;) {
        bits.push_back((value >> b) & 1);
      }
    }
  }
  return bits;
}

Codebook::Codebook(const std::vector<FingerprintLocation>& locs,
                   std::size_t num_buyers, std::uint64_t seed)
    : locs_(&locs) {
  Rng rng(seed);
  const std::size_t nbits = usable_bits(locs);
  ODCFP_CHECK_MSG(num_buyers == 0 || nbits > 0 || num_buyers == 1,
                  "cannot make distinct codewords with zero capacity");
  std::unordered_set<std::string> seen;
  codes_.reserve(num_buyers);
  int attempts = 0;
  while (codes_.size() < num_buyers) {
    ODCFP_CHECK_MSG(++attempts < 1000000, "codeword space exhausted");
    std::vector<bool> bits(nbits);
    for (std::size_t i = 0; i < nbits; ++i) bits[i] = rng.next_bool();
    std::string key(bits.begin(), bits.end());
    if (!seen.insert(key).second) continue;
    codes_.push_back(encode_bits(locs, bits));
  }
}

const FingerprintCode& Codebook::code(std::size_t buyer) const {
  ODCFP_CHECK(buyer < codes_.size());
  return codes_[buyer];
}

FingerprintCode collude(const Codebook& book,
                        const std::vector<std::size_t>& colluders,
                        CollusionStrategy strategy, Rng& rng) {
  ODCFP_CHECK(!colluders.empty());
  FingerprintCode attacked = book.code(colluders[0]);
  for (std::size_t l = 0; l < attacked.size(); ++l) {
    for (std::size_t s = 0; s < attacked[l].size(); ++s) {
      // Values observed across the colluding copies.
      std::vector<std::uint8_t> observed;
      observed.reserve(colluders.size());
      for (std::size_t b : colluders) {
        observed.push_back(book.code(b)[l][s]);
      }
      const bool all_agree = std::all_of(
          observed.begin(), observed.end(),
          [&](std::uint8_t v) { return v == observed[0]; });
      if (all_agree) continue;  // undetectable: must keep the value

      switch (strategy) {
        case CollusionStrategy::kRandomObserved:
          attacked[l][s] = observed[static_cast<std::size_t>(
              rng.next_below(observed.size()))];
          break;
        case CollusionStrategy::kMajority: {
          // Deterministic tie-break: among the most frequent observed
          // values, take the smallest. (An unordered_map scan here let
          // the stdlib's hash iteration order decide ties, so kMajority
          // results differed across standard-library implementations.)
          std::uint8_t best = observed[0];
          int best_count = 0;
          for (std::uint8_t v : observed) {
            const int c = static_cast<int>(
                std::count(observed.begin(), observed.end(), v));
            if (c > best_count || (c == best_count && v < best)) {
              best = v;
              best_count = c;
            }
          }
          attacked[l][s] = best;
          break;
        }
        case CollusionStrategy::kStrip:
          attacked[l][s] = 0;
          break;
      }
    }
  }
  return attacked;
}

TraceResult trace_buyer(const Codebook& book,
                        const FingerprintCode& attacked) {
  TraceResult result;
  std::size_t num_sites = 0;
  for (const auto& per_loc : attacked) num_sites += per_loc.size();
  std::vector<double> score(book.num_buyers(), 0);
  for (std::size_t b = 0; b < book.num_buyers(); ++b) {
    std::size_t matches = 0;
    const FingerprintCode& code = book.code(b);
    for (std::size_t l = 0; l < attacked.size(); ++l) {
      for (std::size_t s = 0; s < attacked[l].size(); ++s) {
        if (code[l][s] == attacked[l][s]) ++matches;
      }
    }
    score[b] = num_sites == 0
                   ? 0.0
                   : static_cast<double>(matches) /
                         static_cast<double>(num_sites);
  }
  result.ranked.resize(book.num_buyers());
  std::iota(result.ranked.begin(), result.ranked.end(), std::size_t{0});
  std::sort(result.ranked.begin(), result.ranked.end(),
            [&](std::size_t a, std::size_t b) {
              return score[a] > score[b] || (score[a] == score[b] && a < b);
            });
  result.scores.reserve(book.num_buyers());
  for (std::size_t b : result.ranked) result.scores.push_back(score[b]);
  return result;
}

}  // namespace odcfp
