// Error-correcting fingerprint codes (paper §V: "include additional
// functionality to our fingerprints, such as error correcting codes or
// redundancy, so that even if an adversary tampers with the circuit, we
// can figure out what they have done and what the original fingerprint
// was").
//
// The payload (e.g. a buyer id) is protected two ways, composable:
//  * an r-fold repetition code with majority decode across sites — robust
//    against an adversary flipping/stripping a bounded fraction of the
//    modifications;
//  * an extended-Hamming SECDED layer on the payload bits — corrects any
//    single residual bit error after majority voting and detects double
//    errors.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fingerprint/codewords.hpp"

namespace odcfp {

struct EccParams {
  int repetition = 3;  ///< Each payload bit is embedded this many times.
};

/// Payload capacity (bits) of `locs` under the ECC scheme: the SECDED
/// data width that fits into usable_bits(locs) / repetition.
std::size_t ecc_payload_bits(const std::vector<FingerprintLocation>& locs,
                             const EccParams& params = {});

/// Encodes `payload` (payload.size() == ecc_payload_bits) into a full
/// FingerprintCode: SECDED-extend, repeat, interleave, then map onto the
/// site alphabets via encode_bits (zero-padded to the exact capacity).
FingerprintCode ecc_encode(const std::vector<FingerprintLocation>& locs,
                           const std::vector<bool>& payload,
                           const EccParams& params = {});

struct EccDecodeResult {
  std::vector<bool> payload;
  std::size_t repetition_corrections = 0;  ///< Sites out-voted.
  bool hamming_corrected = false;          ///< SECDED fixed one bit.
  bool double_error_detected = false;      ///< SECDED detected 2 errors.
};

/// Decodes a (possibly tampered) code back to the payload. Returns
/// nullopt when the damage exceeds the code's correction capability in a
/// detectable way (SECDED double-error).
std::optional<EccDecodeResult> ecc_decode(
    const std::vector<FingerprintLocation>& locs,
    const FingerprintCode& code, const EccParams& params = {});

/// --- building blocks (exposed for tests) ---

/// Extended Hamming (SECDED) encode: appends parity bits to `data`.
std::vector<bool> secded_encode(const std::vector<bool>& data);

/// Number of coded bits for `data_bits` of payload.
std::size_t secded_coded_bits(std::size_t data_bits);

/// Largest payload whose SECDED codeword fits in `coded_bits`.
std::size_t secded_max_data_bits(std::size_t coded_bits);

/// SECDED decode; corrects one error in place. Returns nullopt on a
/// detected double error.
std::optional<std::vector<bool>> secded_decode(std::vector<bool> coded,
                                               std::size_t data_bits,
                                               bool* corrected = nullptr);

}  // namespace odcfp
