#include "common/parallel.hpp"

#include <atomic>
#include <cstdio>
#include <exception>

#include "common/trace.hpp"

namespace odcfp {

/// Shared state of one fork/join loop. Work is claimed one index at a
/// time from `next` (items are coarse — a whole buyer edition, a whole
/// primary-gate analysis — so the atomic increment is noise). `active`
/// counts threads currently inside run_items; the caller joins by waiting
/// for it to drain after unpublishing the loop.
struct ThreadPool::ForLoop {
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  const Budget* budget = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};      ///< An item threw: stop issuing.
  std::atomic<bool> truncated{false};  ///< Budget died: stop issuing.
  std::mutex error_mu;
  std::exception_ptr error;            ///< First item exception (error_mu).
  int active = 0;                      ///< Participating threads (mu_).
  std::condition_variable done_cv;     ///< Signalled when active drains.
};

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] {
      // Name the worker's trace track up front; the name sticks to the
      // thread even when tracing starts later (set_thread_name copies).
      char name[32];
      std::snprintf(name, sizeof(name), "pool-worker-%d", t);
      trace::set_thread_name(name);
      worker_main();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_main() {
  for (;;) {
    ForLoop* loop = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || loop_ != nullptr; });
      if (loop_ == nullptr) return;  // stopping_ with no work left
      loop = loop_;
      ++loop->active;
    }
    run_items(*loop);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--loop->active == 0) loop->done_cv.notify_all();
    }
  }
}

void ThreadPool::run_items(ForLoop& loop) {
  for (;;) {
    if (loop.abort.load(std::memory_order_relaxed)) return;
    if (budget_exhausted(loop.budget)) {
      loop.truncated.store(true, std::memory_order_relaxed);
      return;
    }
    const std::size_t i = loop.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= loop.n) return;
    try {
      (*loop.body)(i);
    } catch (...) {
      loop.abort.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(loop.error_mu);
      if (!loop.error) loop.error = std::current_exception();
      return;
    }
  }
}

Status ThreadPool::run_serial(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              const Budget* budget) {
  for (std::size_t i = 0; i < n; ++i) {
    if (budget_exhausted(budget)) return Status::kExhausted;
    body(i);
  }
  return Status::kOk;
}

Status ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body,
    const Budget* budget) {
  if (n == 0) {
    return budget_exhausted(budget) ? Status::kExhausted : Status::kOk;
  }
  if (workers_.empty()) return run_serial(n, body, budget);

  ForLoop loop;
  loop.body = &body;
  loop.n = n;
  loop.budget = budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (loop_ != nullptr) {
      // A loop is already in flight (nested parallel_for, or a second
      // caller thread): degrade to inline execution instead of deadlocking
      // on the single loop slot.
      return run_serial(n, body, budget);
    }
    loop_ = &loop;
  }
  work_cv_.notify_all();

  run_items(loop);  // the calling thread participates

  std::unique_lock<std::mutex> lock(mu_);
  loop_ = nullptr;  // workers arriving late see no work and keep waiting
  loop.done_cv.wait(lock, [&] { return loop.active == 0; });
  lock.unlock();

  if (loop.error) std::rethrow_exception(loop.error);
  return loop.truncated.load(std::memory_order_relaxed)
             ? Status::kExhausted
             : Status::kOk;
}

Status parallel_for(ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    const Budget* budget) {
  if (pool != nullptr) return pool->parallel_for(n, body, budget);
  for (std::size_t i = 0; i < n; ++i) {
    if (budget_exhausted(budget)) return Status::kExhausted;
    body(i);
  }
  return Status::kOk;
}

}  // namespace odcfp
