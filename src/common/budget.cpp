#include "common/budget.hpp"

namespace odcfp {

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk:             return "ok";
    case Status::kExhausted:      return "exhausted";
    case Status::kInfeasible:     return "infeasible";
    case Status::kMalformedInput: return "malformed-input";
  }
  return "unknown";
}

double Budget::remaining_seconds() const {
  if (!has_deadline_) return 1e18;
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(deadline_ - now).count();
}

}  // namespace odcfp
