// Lightweight precondition / invariant checking used across the library.
//
// ODCFP_CHECK is always on (it guards data-structure invariants that, when
// violated, would silently corrupt results); ODCFP_DCHECK compiles away in
// release builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace odcfp {

/// Thrown when an ODCFP_CHECK fails or a parser/API contract is violated.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace odcfp

#define ODCFP_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::odcfp::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define ODCFP_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::odcfp::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    os_.str());                        \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define ODCFP_DCHECK(expr) ((void)0)
#else
#define ODCFP_DCHECK(expr) ODCFP_CHECK(expr)
#endif
