// Minimal fork/exec process management for the distributed supervisor.
//
// The dist layer (src/dist/) runs shard workers as separate processes so
// that a SIGKILL, OOM, or wedge takes down one shard's worker instead of
// the whole batch. These helpers wrap the POSIX plumbing the supervisor
// needs and nothing more: spawn a child executing a fresh binary, poll
// it without blocking, probe liveness of an arbitrary pid (also used by
// atomic_io's stale-temp sweeper to protect live writers' temp files),
// and kill hard.
//
// Children are spawned with PR_SET_PDEATHSIG(SIGKILL): if the supervisor
// itself dies — including the chaos suite's SIGKILL — every worker it
// spawned is killed by the kernel, so a restarted supervisor never races
// an orphaned worker for the same shard journal.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace odcfp::proc {

/// fork + execv of argv[0] with the given argument vector. Returns the
/// child pid, or -1 with a diagnostic in *error. The child dies with the
/// calling process (PDEATHSIG) and gets a fresh default signal mask.
pid_t spawn(const std::vector<std::string>& argv,
            std::string* error = nullptr);

/// True when `pid` names a process that currently exists (including a
/// zombie not yet reaped, and processes owned by other users).
bool alive(pid_t pid);

/// Non-blocking wait. Returns:
///  * kRunning  — child still alive (nothing reaped);
///  * kExited   — child exited; *exit_code holds its status;
///  * kSignaled — child was killed; *term_signal holds the signal;
///  * kLost     — pid is not a child of this process (already reaped,
///                or never ours).
enum class WaitResult { kRunning, kExited, kSignaled, kLost };
WaitResult try_wait(pid_t pid, int* exit_code, int* term_signal);

/// SIGKILL + blocking reap (best-effort: a pid that is not our child is
/// still signalled, just not waited on).
void kill_hard(pid_t pid);

}  // namespace odcfp::proc
