// Minimal fork/exec process management for the distributed supervisor.
//
// The dist layer (src/dist/) runs shard workers as separate processes so
// that a SIGKILL, OOM, or wedge takes down one shard's worker instead of
// the whole batch. These helpers wrap the POSIX plumbing the supervisor
// needs and nothing more: spawn a child executing a fresh binary, poll
// it without blocking, probe liveness of an arbitrary pid (also used by
// atomic_io's stale-temp sweeper to protect live writers' temp files),
// and kill hard.
//
// Children are spawned with PR_SET_PDEATHSIG(SIGKILL): if the supervisor
// itself dies — including the chaos suite's SIGKILL — every worker it
// spawned is killed by the kernel, so a restarted supervisor never races
// an orphaned worker for the same shard journal.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace odcfp::proc {

/// Why a spawn failed before a child ever ran. kExecFailed is reported
/// differently: exec failures happen after fork, in the child, which
/// _exit(126)s — observe them through try_wait, not through this enum.
enum class SpawnError {
  kNone,
  kEmptyArgv,     ///< argv had no argv[0] to exec
  kOpenFailed,    ///< a redirect target could not be opened/created
  kFdExhausted,   ///< EMFILE/ENFILE opening a redirect target
  kForkFailed,    ///< fork() itself failed (EAGAIN/ENOMEM)
};

/// Returns the stable name of a SpawnError ("none", "empty_argv", ...).
const char* to_string(SpawnError e);

struct SpawnOptions {
  /// When non-empty, the child's stdout/stderr are redirected to these
  /// paths (created 0644, append mode, so a restarted daemon extends its
  /// log instead of clobbering it). The files are opened in the PARENT:
  /// open failures — a missing directory, or fd exhaustion (EMFILE /
  /// ENFILE) — surface as typed spawn errors before any fork happens,
  /// never as a child that silently exits.
  std::string stdout_path;
  std::string stderr_path;
};

/// fork + execv of argv[0] with the given argument vector. Returns the
/// child pid, or -1 with a diagnostic in *error (and, when error_kind is
/// non-null, a typed reason). The child dies with the calling process
/// (PDEATHSIG) and gets a fresh default signal mask. A child whose exec
/// fails (bad executable path, not executable) _exit(126)s — poll it
/// with try_wait to observe that.
pid_t spawn(const std::vector<std::string>& argv, const SpawnOptions& options,
            std::string* error = nullptr, SpawnError* error_kind = nullptr);

/// Back-compat overload: no redirection.
pid_t spawn(const std::vector<std::string>& argv,
            std::string* error = nullptr);

/// True when `pid` names a process that currently exists (including a
/// zombie not yet reaped, and processes owned by other users).
bool alive(pid_t pid);

/// Non-blocking wait. Returns:
///  * kRunning  — child still alive (nothing reaped);
///  * kExited   — child exited; *exit_code holds its status;
///  * kSignaled — child was killed; *term_signal holds the signal;
///  * kLost     — pid is not a child of this process (already reaped,
///                or never ours).
enum class WaitResult { kRunning, kExited, kSignaled, kLost };
WaitResult try_wait(pid_t pid, int* exit_code, int* term_signal);

/// SIGKILL + blocking reap (best-effort: a pid that is not our child is
/// still signalled, just not waited on).
void kill_hard(pid_t pid);

}  // namespace odcfp::proc
