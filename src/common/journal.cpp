#include "common/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <exception>
#include <mutex>
#include <sstream>

#include "common/atomic_io.hpp"
#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"

namespace odcfp {

namespace {

constexpr const char* kMagicLine = "odcfp-journal 1";

std::string errno_message(const char* step, const std::string& path) {
  std::string msg = step;
  msg += " '" + path + "': ";
  msg += std::strerror(errno);
  return msg;
}

std::string parent_dir(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

void hex8(std::uint32_t value, std::string* out) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  *out += buf;
}

// ---- payload parsing helpers (strict field order, see header doc) ----

bool consume(std::string_view* s, std::string_view prefix) {
  if (s->substr(0, prefix.size()) != prefix) return false;
  s->remove_prefix(prefix.size());
  return true;
}

bool parse_u64_field(std::string_view* s, std::uint64_t* out) {
  std::size_t i = 0;
  std::uint64_t v = 0;
  while (i < s->size() && (*s)[i] >= '0' && (*s)[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>((*s)[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  *out = v;
  s->remove_prefix(i);
  return consume(s, " ") || s->empty();
}

bool parse_hex32_field(std::string_view* s, std::uint32_t* out) {
  if (s->size() < 8) return false;
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const char c = (*s)[i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  s->remove_prefix(8);
  return consume(s, " ") || s->empty();
}

std::string entry_payload(const JournalEntry& e) {
  std::ostringstream os;
  os << "seq=" << e.seq << " buyer=" << e.buyer
     << " phase=" << to_string(e.phase) << " crc=";
  std::string crc;
  hex8(e.artifact_crc, &crc);
  os << crc << " wall=" << e.wall_ns << " artifact=" << e.artifact;
  return os.str();
}

bool parse_entry_payload(std::string_view payload, JournalEntry* out) {
  if (!consume(&payload, "seq=") ||
      !parse_u64_field(&payload, &out->seq)) {
    return false;
  }
  if (!consume(&payload, "buyer=") ||
      !parse_u64_field(&payload, &out->buyer)) {
    return false;
  }
  if (!consume(&payload, "phase=")) return false;
  const std::size_t sp = payload.find(' ');
  if (sp == std::string_view::npos) return false;
  if (!parse_buyer_phase(std::string(payload.substr(0, sp)), &out->phase)) {
    return false;
  }
  payload.remove_prefix(sp + 1);
  if (!consume(&payload, "crc=") ||
      !parse_hex32_field(&payload, &out->artifact_crc)) {
    return false;
  }
  // wall= is a later wire addition: optional on parse so journals (and
  // handcrafted fixtures) written without it still replay, wall_ns == 0.
  if (consume(&payload, "wall=") &&
      !parse_u64_field(&payload, &out->wall_ns)) {
    return false;
  }
  if (!consume(&payload, "artifact=")) return false;
  out->artifact = std::string(payload);
  return true;
}

std::string heartbeat_payload(std::uint64_t pid, std::uint64_t beat,
                              std::uint64_t wall_ns) {
  std::ostringstream os;
  os << "pid=" << pid << " beat=" << beat << " wall=" << wall_ns;
  return os.str();
}

bool parse_heartbeat_payload(std::string_view payload, std::uint64_t* pid,
                             std::uint64_t* beat, std::uint64_t* wall_ns) {
  if (!consume(&payload, "pid=") || !parse_u64_field(&payload, pid) ||
      !consume(&payload, "beat=") || !parse_u64_field(&payload, beat)) {
    return false;
  }
  *wall_ns = 0;  // optional trailing field (pre-wall journals)
  if (consume(&payload, "wall=") &&
      !parse_u64_field(&payload, wall_ns)) {
    return false;
  }
  return payload.empty();
}

}  // namespace

namespace journal_wire {

std::string header_payload(const JournalHeader& h) {
  std::ostringstream os;
  os << "seed=" << h.seed << " buyers=" << h.num_buyers << " config=";
  std::string cfg;
  hex8(h.config_crc, &cfg);
  os << cfg << " label=" << h.label;
  return os.str();
}

bool parse_header_payload(std::string_view payload, JournalHeader* out) {
  if (!consume(&payload, "seed=") ||
      !parse_u64_field(&payload, &out->seed)) {
    return false;
  }
  if (!consume(&payload, "buyers=") ||
      !parse_u64_field(&payload, &out->num_buyers)) {
    return false;
  }
  if (!consume(&payload, "config=") ||
      !parse_hex32_field(&payload, &out->config_crc)) {
    return false;
  }
  if (!consume(&payload, "label=")) return false;
  out->label = std::string(payload);
  return true;
}

/// "H <crc8> <payload>" -> payload, with the checksum verified.
bool checked_payload(std::string_view line, char tag,
                     std::string_view* payload) {
  if (line.size() < 11 || line[0] != tag || line[1] != ' ' ||
      line[10] != ' ') {
    return false;
  }
  std::uint32_t recorded = 0;
  std::string_view crc_text = line.substr(2, 8);
  if (!parse_hex32_field(&crc_text, &recorded)) return false;
  *payload = line.substr(11);
  return atomic_io::crc32(*payload) == recorded;
}

std::string format_line(char tag, const std::string& payload) {
  std::string line(1, tag);
  line += ' ';
  hex8(atomic_io::crc32(payload), &line);
  line += ' ';
  line += payload;
  line += '\n';
  return line;
}

}  // namespace journal_wire

namespace {

using journal_wire::checked_payload;
using journal_wire::format_line;
using journal_wire::header_payload;
using journal_wire::parse_header_payload;

}  // namespace

const char* to_string(BuyerPhase phase) {
  switch (phase) {
    case BuyerPhase::kQueued: return "queued";
    case BuyerPhase::kEmbedding: return "embedding";
    case BuyerPhase::kVerified: return "verified";
    case BuyerPhase::kCommitted: return "committed";
    case BuyerPhase::kFailed: return "failed";
  }
  return "unknown";
}

bool parse_buyer_phase(const std::string& text, BuyerPhase* out) {
  for (const BuyerPhase p :
       {BuyerPhase::kQueued, BuyerPhase::kEmbedding, BuyerPhase::kVerified,
        BuyerPhase::kCommitted, BuyerPhase::kFailed}) {
    if (text == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

std::vector<BuyerPhase> JournalReplay::phase_of(
    std::size_t num_buyers) const {
  std::vector<BuyerPhase> latest(num_buyers, BuyerPhase::kQueued);
  for (const JournalEntry& e : entries) {
    if (e.buyer < num_buyers) latest[e.buyer] = e.phase;
  }
  return latest;
}

const JournalEntry* JournalReplay::committed(std::uint64_t buyer) const {
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (it->buyer == buyer && it->phase == BuyerPhase::kCommitted) {
      return &*it;
    }
  }
  return nullptr;
}

Outcome<JournalReplay> read_journal(const std::string& path) {
  std::string bytes;
  if (!atomic_io::read_file(path, &bytes)) {
    return Outcome<JournalReplay>::malformed("cannot open journal '" +
                                             path + "'");
  }
  if (bytes.empty()) {
    // create() writes magic + header in a single write before returning,
    // so no crash leaves a zero-byte journal behind: an empty file means
    // external truncation (or an unrelated file at the journal's path),
    // and treating it as a fresh run would silently discard whatever the
    // journal once recorded.
    return Outcome<JournalReplay>::malformed(
        "journal '" + path +
        "' exists but is empty — refusing to treat it as a fresh run "
        "(externally truncated?); delete the file to start over");
  }
  JournalReplay replay;
  std::size_t pos = 0;
  std::size_t line_index = 0;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      // Trailing bytes without a newline: a record torn by a crash
      // mid-write. Tolerated only because nothing can follow it.
      replay.torn_tail = true;
      break;
    }
    const std::string_view line(bytes.data() + pos, nl - pos);
    const bool is_final = nl + 1 >= bytes.size();
    if (line_index == 0) {
      if (line != kMagicLine) {
        if (is_final) {
          replay.torn_tail = true;
          break;
        }
        return Outcome<JournalReplay>::malformed(
            path + ": not an odcfp journal (bad magic line)");
      }
    } else if (line_index == 1) {
      std::string_view payload;
      if (!checked_payload(line, 'H', &payload) ||
          !parse_header_payload(payload, &replay.header)) {
        if (is_final) {
          // Crash before the header became durable: the run never did
          // any work; the caller starts over.
          replay.torn_tail = true;
          break;
        }
        return Outcome<JournalReplay>::malformed(
            path + ": corrupt header record");
      }
      replay.has_header = true;
    } else if (!line.empty() && line[0] == 'B') {
      // Liveness heartbeat: CRC-checked like any record, but carries no
      // sequence number and never enters `entries` — phase state and
      // resume decisions are blind to it.
      std::string_view payload;
      std::uint64_t pid = 0, beat = 0, hb_wall = 0;
      if (!checked_payload(line, 'B', &payload) ||
          !parse_heartbeat_payload(payload, &pid, &beat, &hb_wall)) {
        if (is_final) {
          replay.torn_tail = true;
          break;
        }
        std::ostringstream os;
        os << path << ": corrupt heartbeat at line " << (line_index + 1);
        return Outcome<JournalReplay>::malformed(os.str());
      }
      ++replay.heartbeats;
      replay.last_heartbeat = beat;
      replay.heartbeat_walls.push_back(hb_wall);
    } else {
      JournalEntry entry;
      std::string_view payload;
      if (!checked_payload(line, 'R', &payload) ||
          !parse_entry_payload(payload, &entry)) {
        if (is_final) {
          replay.torn_tail = true;
          break;
        }
        std::ostringstream os;
        os << path << ": corrupt record at line " << (line_index + 1);
        return Outcome<JournalReplay>::malformed(os.str());
      }
      if (entry.seq < replay.next_seq) {
        // Sequence regression cannot come from a torn append; the file
        // was edited or records were lost.
        std::ostringstream os;
        os << path << ": sequence regression at line " << (line_index + 1)
           << " (seq " << entry.seq << " after " << replay.next_seq << ")";
        return Outcome<JournalReplay>::malformed(os.str());
      }
      replay.next_seq = entry.seq + 1;
      replay.entries.push_back(std::move(entry));
    }
    pos = nl + 1;
    replay.valid_bytes = pos;
    ++line_index;
  }
  return Outcome<JournalReplay>::success(std::move(replay));
}

// ---------------------------------------------------------------- writer

struct Journal::Impl {
  std::string path;
  int fd = -1;
  std::uint64_t next_seq = 0;
  std::mutex mu;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }
};

Journal::Journal() : impl_(std::make_unique<Impl>()) {}
Journal::~Journal() = default;
Journal::Journal(Journal&&) noexcept = default;
Journal& Journal::operator=(Journal&&) noexcept = default;

bool Journal::is_open() const { return impl_ != nullptr && impl_->fd >= 0; }
const std::string& Journal::path() const { return impl_->path; }

void Journal::close() {
  if (impl_ != nullptr && impl_->fd >= 0) {
    ::close(impl_->fd);
    impl_->fd = -1;
  }
}

Outcome<Journal> Journal::create(const std::string& path,
                                 const JournalHeader& header) {
  Journal journal;
  journal.impl_->path = path;
  try {
    ODCFP_FAULT_POINT("journal.create");
    if (!atomic_io::make_dirs(parent_dir(path))) {
      return Outcome<Journal>::malformed(
          errno_message("mkdir for journal", path));
    }
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_APPEND |
                              O_CLOEXEC,
                          0644);
    if (fd < 0) {
      return Outcome<Journal>::malformed(errno_message("open", path));
    }
    journal.impl_->fd = fd;
    std::string prologue = kMagicLine;
    prologue += '\n';
    prologue += format_line('H', header_payload(header));
    const ssize_t n = ::write(fd, prologue.data(), prologue.size());
    if (n != static_cast<ssize_t>(prologue.size()) || ::fsync(fd) != 0) {
      return Outcome<Journal>::malformed(
          errno_message("write header", path));
    }
  } catch (const std::exception& e) {
    return Outcome<Journal>::malformed(
        "injected fault creating journal '" + path + "': " + e.what());
  }
  // Make the journal's *name* durable too: a run that crashes right
  // after create must find the file on resume.
  const int dir_fd = ::open(parent_dir(path).c_str(),
                            O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  log::info("journal.created")
      .field("path", path)
      .field("seed", header.seed)
      .field("buyers", header.num_buyers)
      .field("label", header.label);
  return Outcome<Journal>::success(std::move(journal));
}

Outcome<Journal> Journal::append_to(const std::string& path,
                                    const JournalReplay& replay) {
  Journal journal;
  journal.impl_->path = path;
  journal.impl_->next_seq = replay.next_seq;
  const int fd =
      // O_RDWR, not O_WRONLY: the prologue re-validation below preads
      // the header bytes back through this same descriptor.
      ::open(path.c_str(), O_RDWR | O_APPEND | O_CLOEXEC);
  if (fd < 0) {
    return Outcome<Journal>::malformed(errno_message("open", path));
  }
  journal.impl_->fd = fd;
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Outcome<Journal>::malformed(errno_message("fstat", path));
  }
  if (static_cast<std::uint64_t>(st.st_size) != replay.valid_bytes) {
    // Drop the torn tail before appending: O_APPEND writes land at EOF,
    // and EOF must be the end of the last intact record.
    if (::ftruncate(fd, static_cast<off_t>(replay.valid_bytes)) != 0 ||
        ::fsync(fd) != 0) {
      return Outcome<Journal>::malformed(
          errno_message("truncate torn tail", path));
    }
    log::warn("journal.torn_tail_dropped")
        .field("path", path)
        .field("bytes_dropped",
               static_cast<std::int64_t>(st.st_size) -
                   static_cast<std::int64_t>(replay.valid_bytes));
  }
  // Re-validate the prologue against the bytes actually on disk before
  // any append lands: `replay` may have been computed from a file that
  // was since tampered with or swapped (another process owns the same
  // path), and O_APPEND would happily extend a journal whose header no
  // longer checks out.
  // The first two lines are all that needs re-reading; 1 MiB bounds the
  // work on journals with very long labels.
  std::string prologue(
      static_cast<std::size_t>(
          std::min<std::uint64_t>(replay.valid_bytes, 1u << 20)),
      '\0');
  std::size_t got = 0;
  while (got < prologue.size()) {
    const ssize_t n = ::pread(fd, prologue.data() + got,
                              prologue.size() - got,
                              static_cast<off_t>(got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Outcome<Journal>::malformed(
          errno_message("re-read for header validation", path));
    }
    got += static_cast<std::size_t>(n);
  }
  const std::size_t magic_nl = prologue.find('\n');
  if (magic_nl == std::string::npos ||
      std::string_view(prologue.data(), magic_nl) != kMagicLine) {
    return Outcome<Journal>::malformed(
        path + ": magic line no longer valid on disk; refusing to append");
  }
  if (replay.has_header) {
    const std::size_t header_nl = prologue.find('\n', magic_nl + 1);
    std::string_view header_line(prologue.data() + magic_nl + 1,
                                 (header_nl == std::string::npos
                                      ? prologue.size()
                                      : header_nl) -
                                     (magic_nl + 1));
    std::string_view payload;
    JournalHeader on_disk;
    if (header_nl == std::string::npos ||
        !checked_payload(header_line, 'H', &payload) ||
        !parse_header_payload(payload, &on_disk)) {
      return Outcome<Journal>::malformed(
          path +
          ": header CRC re-validation failed after torn-tail sweep; "
          "refusing to append");
    }
  }
  return Outcome<Journal>::success(std::move(journal));
}

bool Journal::append(std::uint64_t buyer, BuyerPhase phase,
                     const std::string& artifact,
                     std::uint32_t artifact_crc, std::string* error) {
  std::string diag;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->fd < 0) {
    diag = "journal '" + impl_->path + "' is not open";
  } else {
    JournalEntry entry;
    entry.seq = impl_->next_seq;
    entry.buyer = buyer;
    entry.phase = phase;
    entry.artifact = artifact;
    entry.artifact_crc = artifact_crc;
    entry.wall_ns = clocks::anchored_wall_now_ns();
    const std::string line = format_line('R', entry_payload(entry));
    try {
      struct stat st;
      if (::fstat(impl_->fd, &st) != 0) {
        diag = errno_message("fstat", impl_->path);
      } else {
        std::size_t off = 0;
        try {
          ODCFP_FAULT_POINT("journal.append");
        } catch (const fault::InjectedDiskFull& e) {
          // Simulated ENOSPC: land the accepted prefix for real so the
          // file carries a genuinely torn record, then take the rollback
          // path below — the journal must shrink back to the last intact
          // record, never expose a mid-file partial line.
          const std::size_t short_n = std::min(e.short_bytes, line.size());
          if (short_n > 0) {
            (void)::write(impl_->fd, line.data(), short_n);
            off = short_n;
          }
          diag = std::string("short write (disk full) on '") +
                 impl_->path + "': " + e.what();
        }
        while (diag.empty() && off < line.size()) {
          const ssize_t n =
              ::write(impl_->fd, line.data() + off, line.size() - off);
          if (n < 0) {
            if (errno == EINTR) continue;
            diag = errno_message("append", impl_->path);
            break;
          }
          off += static_cast<std::size_t>(n);
        }
        if (!diag.empty() && off > 0) {
          // A partial line mid-file would read as corruption (only the
          // FINAL record may be torn), so roll the file back to the
          // pre-append size. If even that fails the journal is unusable.
          if (::ftruncate(impl_->fd, st.st_size) != 0) {
            ::close(impl_->fd);
            impl_->fd = -1;
            diag += "; rollback failed, journal closed";
          }
        }
        if (diag.empty()) {
          // The line is fully written: consume the sequence number even
          // if fsync fails below, so a retried append never duplicates
          // a seq (replay requires them strictly increasing).
          impl_->next_seq = entry.seq + 1;
          ODCFP_FAULT_POINT("journal.fsync");
          if (::fsync(impl_->fd) != 0) {
            diag = errno_message("fsync", impl_->path);
          }
        }
      }
    } catch (const std::exception& e) {
      diag = std::string("injected fault appending to '") + impl_->path +
             "': " + e.what();
    }
  }
  if (diag.empty()) return true;
  log::warn("journal.append_failed").field("error", diag);
  if (error != nullptr) *error = diag;
  return false;
}

bool Journal::heartbeat(std::uint64_t beat, std::string* error) {
  std::string diag;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->fd < 0) {
    diag = "journal '" + impl_->path + "' is not open";
  } else {
    const std::string line = format_line(
        'B', heartbeat_payload(static_cast<std::uint64_t>(::getpid()),
                               beat, clocks::anchored_wall_now_ns()));
    struct stat st;
    if (::fstat(impl_->fd, &st) != 0) {
      diag = errno_message("fstat", impl_->path);
    } else {
      std::size_t off = 0;
      while (off < line.size()) {
        const ssize_t n =
            ::write(impl_->fd, line.data() + off, line.size() - off);
        if (n < 0) {
          if (errno == EINTR) continue;
          diag = errno_message("heartbeat append", impl_->path);
          break;
        }
        off += static_cast<std::size_t>(n);
      }
      if (!diag.empty() && off > 0) {
        // Same discipline as append(): a partial line followed by a
        // later successful append would replay as MID-file corruption,
        // so roll the file back to the pre-heartbeat size.
        if (::ftruncate(impl_->fd, st.st_size) != 0) {
          ::close(impl_->fd);
          impl_->fd = -1;
          diag += "; rollback failed, journal closed";
        }
      }
      // fsync makes the liveness signal visible to a supervisor
      // stat'ing the file; a failed fsync leaves at worst a torn tail.
      if (diag.empty() && ::fsync(impl_->fd) != 0) {
        diag = errno_message("heartbeat fsync", impl_->path);
      }
    }
  }
  if (diag.empty()) return true;
  if (error != nullptr) *error = diag;
  return false;
}

}  // namespace odcfp
