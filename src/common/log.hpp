// Leveled structured logging: one JSON object per line (JSONL).
//
// Every record carries the current telemetry span path ("span"), so a
// log line, the aggregate telemetry tree (src/common/telemetry.*), and
// the event timeline (src/common/trace.*) all join on one key: the
// span-name strings. A budget death logged by the serving layer can be
// matched to the span where the telemetry attributed it and to the
// budget.exhausted instant on the trace timeline without any other
// correlation id.
//
// Configuration (read once, overridable programmatically):
//  * ODCFP_LOG=<path>|stderr|stdout|-  routes all enabled records there.
//    When unset, only kWarn and kError records are emitted (to stderr),
//    so libraries can log unconditionally without spamming example
//    binaries' stdout UX.
//  * ODCFP_LOG_LEVEL=debug|info|warn|error|off  minimum level (default
//    info).
//
// Record shape (reserved keys first, then user fields in call order):
//   {"ts_ns":<anchored wall ns>,"level":"info","event":"batch.done",
//    "tid":2,"span":"batch_fingerprint/batch_fingerprint.edition", ...}
//
// Timebase: ts_ns is the *anchored* wall clock (src/common/clock.*) —
// the process clock anchor plus the steady-clock delta — so log lines,
// trace timestamps, and the wall= fields on dist journal records all
// share one epoch and merge into the stitched timeline without
// per-source correction. When ODCFP_LOG names a destination, the first
// record written is one `clock_anchor` event carrying the anchor pair
// and pid, so a log file is self-describing the same way a trace file's
// otherData is.
// Field keys must not collide with the reserved keys (ts_ns, level,
// event, tid, span); the logger does not deduplicate.
//
// Cost contract: a record below the active level (or below kWarn with no
// sink configured) costs one atomic load and allocates nothing; active
// records format into a per-record buffer and take one short mutex hold
// to append the line atomically (records from concurrent threads never
// interleave within a line).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace odcfp::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3,
                         kOff = 4 };

const char* to_string(Level level);

/// Active minimum level (from ODCFP_LOG_LEVEL, default kInfo).
Level level();
void set_level(Level level);

/// True when a record at `level` would actually be written.
bool enabled(Level level);

/// Redirects all enabled records to `os` (tests / embedders); nullptr
/// restores the ODCFP_LOG-configured default.
void set_stream(std::ostream* os);

/// The self-description record written first to every ODCFP_LOG
/// destination: {"ts_ns":...,"event":"clock_anchor",...,"wall_ns":...,
/// "steady_ns":...,"pid":...}, newline-terminated. Exposed so tests and
/// embedders with their own sinks can emit / verify the same line.
std::string clock_anchor_line();

/// One structured record, emitted on destruction. Move-only; build it
/// fluently in one expression:
///   log::warn("cec.exhausted").field("conflicts", n).field("method", m);
class Record {
 public:
  Record(Level level, const char* event);
  ~Record();
  Record(Record&& other) noexcept;
  Record(const Record&) = delete;
  Record& operator=(const Record&) = delete;
  Record& operator=(Record&&) = delete;

  Record& field(const char* key, std::string_view value);
  Record& field(const char* key, const char* value);
  Record& field(const char* key, std::int64_t value);
  Record& field(const char* key, std::uint64_t value);
  Record& field(const char* key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }
  Record& field(const char* key, double value);
  Record& field(const char* key, bool value);

 private:
  bool active_ = false;
  Level level_ = Level::kInfo;
  std::string line_;
};

inline Record debug(const char* event) {
  return Record(Level::kDebug, event);
}
inline Record info(const char* event) { return Record(Level::kInfo, event); }
inline Record warn(const char* event) { return Record(Level::kWarn, event); }
inline Record error(const char* event) {
  return Record(Level::kError, event);
}

}  // namespace odcfp::log
