#include "common/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>

#include "common/clock.hpp"
#include "common/telemetry.hpp"

namespace odcfp::log {

namespace {

Level parse_level(const char* s) {
  if (s == nullptr || *s == '\0') return Level::kInfo;
  if (std::strcmp(s, "debug") == 0 || std::strcmp(s, "0") == 0) {
    return Level::kDebug;
  }
  if (std::strcmp(s, "info") == 0 || std::strcmp(s, "1") == 0) {
    return Level::kInfo;
  }
  if (std::strcmp(s, "warn") == 0 || std::strcmp(s, "warning") == 0 ||
      std::strcmp(s, "2") == 0) {
    return Level::kWarn;
  }
  if (std::strcmp(s, "error") == 0 || std::strcmp(s, "3") == 0) {
    return Level::kError;
  }
  if (std::strcmp(s, "off") == 0 || std::strcmp(s, "none") == 0) {
    return Level::kOff;
  }
  return Level::kInfo;
}

struct Global {
  std::atomic<int> level{static_cast<int>(Level::kInfo)};
  std::mutex mu;          ///< Guards file / stream / line appends.
  std::FILE* file = nullptr;   ///< ODCFP_LOG destination (may be stderr).
  bool owns_file = false;
  bool configured = false;     ///< ODCFP_LOG was set (any destination).
  std::ostream* stream = nullptr;  ///< set_stream override (tests).
};

/// Leaked so records emitted from static destructors / atexit handlers
/// (e.g. the ODCFP_TRACE flush) still have a live sink.
Global& g() {
  static Global* instance = [] {
    Global* G = new Global();
    G->level.store(
        static_cast<int>(parse_level(std::getenv("ODCFP_LOG_LEVEL"))),
        std::memory_order_relaxed);
    const char* dest = std::getenv("ODCFP_LOG");
    if (dest != nullptr && *dest != '\0') {
      G->configured = true;
      if (std::strcmp(dest, "stderr") == 0) {
        G->file = stderr;
      } else if (std::strcmp(dest, "stdout") == 0 ||
                 std::strcmp(dest, "-") == 0) {
        G->file = stdout;
      } else {
        G->file = std::fopen(dest, "a");
        if (G->file == nullptr) {
          std::fprintf(stderr,
                       "odcfp: cannot open ODCFP_LOG=%s, logging to "
                       "stderr\n",
                       dest);
          G->file = stderr;
        } else {
          G->owns_file = true;
        }
      }
      // Self-description first: the anchor pair lets a stitcher place
      // every subsequent ts_ns on the cross-process timeline.
      const std::string anchor = clock_anchor_line();
      std::fwrite(anchor.data(), 1, anchor.size(), G->file);
      std::fflush(G->file);
    }
    return G;
  }();
  return *instance;
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Stable small per-thread id for correlating lines from one thread.
int thread_id() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

std::string clock_anchor_line() {
  // Composed by hand rather than via Record: this runs during the log
  // global's own initialization, where a Record would re-enter g().
  const clocks::ClockAnchor& a = clocks::process_anchor();
  std::string line;
  line.reserve(160);
  line += "{\"ts_ns\":";
  line += std::to_string(clocks::anchored_wall_now_ns());
  line += ",\"level\":\"info\",\"event\":\"clock_anchor\",\"tid\":";
  line += std::to_string(thread_id());
  line += ",\"span\":\"\",\"wall_ns\":";
  line += std::to_string(a.wall_ns);
  line += ",\"steady_ns\":";
  line += std::to_string(a.steady_ns);
  line += ",\"pid\":";
  line += std::to_string(static_cast<long long>(::getpid()));
  line += "}\n";
  return line;
}

const char* to_string(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "?";
}

Level level() {
  return static_cast<Level>(g().level.load(std::memory_order_relaxed));
}

void set_level(Level lv) {
  g().level.store(static_cast<int>(lv), std::memory_order_relaxed);
}

bool enabled(Level lv) {
  Global& G = g();
  if (static_cast<int>(lv) < G.level.load(std::memory_order_relaxed)) {
    return false;
  }
  if (lv == Level::kOff) return false;
  if (G.stream != nullptr || G.configured) return true;
  // No sink configured: only warnings and errors reach stderr.
  return lv >= Level::kWarn;
}

void set_stream(std::ostream* os) {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.stream = os;
}

Record::Record(Level lv, const char* event) : level_(lv) {
  if (!enabled(lv)) return;
  active_ = true;
  line_.reserve(160);
  // Anchored wall time: same epoch as the wall clock, but advancing on
  // the steady clock so it orders consistently with trace timestamps
  // and the dist layer's wall= fields (see src/common/clock.*).
  line_ += "{\"ts_ns\":";
  line_ += std::to_string(clocks::anchored_wall_now_ns());
  line_ += ",\"level\":\"";
  line_ += to_string(lv);
  line_ += "\",\"event\":";
  append_escaped(line_, event);
  line_ += ",\"tid\":";
  line_ += std::to_string(thread_id());
  // The join key: the open telemetry span path of this thread, exactly
  // as telemetry JSONL / the trace timeline name it.
  line_ += ",\"span\":";
  std::string path;
  for (const char* span : telemetry::current_path()) {
    path += '/';
    path += span;
  }
  append_escaped(line_, path);
}

Record::Record(Record&& other) noexcept
    : active_(other.active_),
      level_(other.level_),
      line_(std::move(other.line_)) {
  other.active_ = false;
}

Record::~Record() {
  if (!active_) return;
  line_ += "}\n";
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  if (G.stream != nullptr) {
    G.stream->write(line_.data(),
                    static_cast<std::streamsize>(line_.size()));
    if (level_ >= Level::kWarn) G.stream->flush();
    return;
  }
  std::FILE* f = G.file != nullptr ? G.file : stderr;
  std::fwrite(line_.data(), 1, line_.size(), f);
  if (level_ >= Level::kWarn) std::fflush(f);
}

Record& Record::field(const char* key, std::string_view value) {
  if (!active_) return *this;
  line_ += ',';
  append_escaped(line_, key);
  line_ += ':';
  append_escaped(line_, value);
  return *this;
}

Record& Record::field(const char* key, const char* value) {
  return field(key, std::string_view(value != nullptr ? value : ""));
}

Record& Record::field(const char* key, std::int64_t value) {
  if (!active_) return *this;
  line_ += ',';
  append_escaped(line_, key);
  line_ += ':';
  line_ += std::to_string(value);
  return *this;
}

Record& Record::field(const char* key, std::uint64_t value) {
  if (!active_) return *this;
  line_ += ',';
  append_escaped(line_, key);
  line_ += ':';
  line_ += std::to_string(value);
  return *this;
}

Record& Record::field(const char* key, double value) {
  if (!active_) return *this;
  line_ += ',';
  append_escaped(line_, key);
  line_ += ':';
  char buf[40];
  if (value == value &&
      value <= 1.7976931348623157e308 && value >= -1.7976931348623157e308) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no NaN/Inf
  }
  line_ += buf;
  return *this;
}

Record& Record::field(const char* key, bool value) {
  if (!active_) return *this;
  line_ += ',';
  append_escaped(line_, key);
  line_ += ':';
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace odcfp::log
