// Event-level tracing: a per-thread, lock-free, bounded trace recorder
// emitting Chrome trace_event / Perfetto-compatible JSON.
//
// Where src/common/telemetry.* answers "how much time / effort per span
// path, in aggregate", this module answers "what happened, when, on
// which thread": every telemetry::Span open/close becomes a B/E duration
// event, every TELEM_COUNT becomes a C counter sample, and one-shot
// moments — budget exhaustion, fault injections, SAT restarts — become
// `i` instant events. The three layers join on the same span-name
// strings, so a slow path found in the aggregate tree can be located on
// the timeline (and in the structured log, see src/common/log.*) without
// re-running anything.
//
// Recording model:
//  * Each thread appends events to a private fixed-capacity buffer; the
//    hot path is one relaxed enabled() load when off, and when on a
//    bounds check + slot write + one release store (no locks, no
//    allocation after the buffer exists). Buffers are preallocated at
//    first use per thread (capacity from trace::start / ODCFP_TRACE_LIMIT,
//    default 256Ki events), so memory is bounded by
//    threads x limit x sizeof(Event).
//  * On overflow the *newest* events are dropped and counted — keeping
//    the earliest prefix preserves B/E nesting (a valid truncated
//    timeline), where overwriting the oldest would orphan end events.
//    The drop count is exposed via dropped_events(), embedded in the
//    trace file's otherData, and reported as trace_dropped_events in
//    BENCH_*.json artifacts (schema v2).
//  * Collection (write/write_file) reads each buffer's published prefix
//    via an acquire load, so a post-run flush is safe while idle worker
//    threads are still alive. The flush is deterministic: it serializes
//    exactly the published events, sorted by thread id, in one pass.
//  * Tracing is an observer: like telemetry, nothing reads it back, so
//    pipeline results are bit-identical with tracing on or off.
//
// Track naming: pool workers call set_thread_name("pool-worker-N")
// (done by ThreadPool), and telemetry::AttachScope re-emits its
// re-rooting path as B/E events on the worker's track, so a worker's
// timeline shows which fan-out phase each item served.
//
// Durability: arm_file(path) makes the trace crash-survivable — flush()
// atomically rewrites `path` with everything published so far, and a
// one-shot atexit handler writes the final state on clean exit. The
// distributed layer arms per-shard files under run_dir/traces/ and
// flushes on every heartbeat tick, so a worker SIGKILLed mid-run loses
// at most the events since its last heartbeat; otherData counts the
// flushes so the stitcher can report how stale a truncated file is.
//
// Cross-process identity: each trace file's otherData embeds this
// process's clock anchor (see src/common/clock.*) plus the process
// label and any set_meta() key/values (run label, shard, epoch), which
// is everything src/dist/stitch.* needs to align and attribute tracks
// without out-of-band context.
//
// Activation: set ODCFP_TRACE=<path> to record for the whole process
// (the path is armed, so the same incremental-durability rules apply),
// or call start()/arm_file()/write_file() programmatically. All
// name/detail strings passed to the emitters must have static storage
// duration (they are the TELEM_SPAN/fault-site literals);
// set_thread_name / set_process_label / set_meta copy their arguments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace odcfp::trace {

/// True while a trace is being recorded (one relaxed atomic load).
bool enabled();

/// Begins recording into per-thread memory buffers. `per_thread_limit`
/// caps events per thread (0 = $ODCFP_TRACE_LIMIT or 256Ki). A no-op if
/// already recording. Clears any previously collected events.
void start(std::size_t per_thread_limit = 0);

/// Stops recording and discards all buffered events (write first to keep
/// them). A no-op when not recording.
void stop();

/// Serializes everything recorded since start() as one Chrome
/// trace_event JSON object ({"traceEvents":[...], ...}). Callable while
/// recording; concurrent emitters are safe but only their already
/// published events appear.
void write(std::ostream& os);

/// write() to a file; returns false (and reports via the structured log)
/// when the file cannot be opened.
bool write_file(const std::string& path);

/// Events dropped on buffer overflow since start(), summed over threads.
std::uint64_t dropped_events();

/// Events currently recorded (published), summed over threads.
std::uint64_t recorded_events();

/// Names the calling thread's track in the emitted trace ("main",
/// "pool-worker-3"). Copied (truncated to 47 chars); callable before
/// start(), the name sticks to the thread for later traces.
void set_thread_name(const char* name);

/// Names this process's track group in the emitted trace (the
/// process_name metadata event), e.g. "supervisor" or "shard-3".
/// Copied (truncated to 47 chars); default "odcfp". Reset by start().
void set_process_label(const char* label);

/// Attaches a key/value pair to the trace file's otherData (both copied)
/// — run/shard/epoch identity for the stitcher. Keys sort
/// deterministically in the output; reserved otherData keys (those
/// starting with "trace_" or "clock_") are silently skipped. Cleared by
/// start().
void set_meta(const std::string& key, const std::string& value);

/// Arms incremental durability: flush() and a one-shot atexit handler
/// atomically rewrite `path` with the published events. Arming does not
/// start recording (call start() first); re-arming replaces the path.
void arm_file(const std::string& path);

/// Clears the armed path without writing. The atexit handler becomes a
/// no-op until armed again.
void disarm();

/// True when a flush destination is armed (arm_file or ODCFP_TRACE).
bool armed();

/// Atomically rewrites the armed file with everything published so far;
/// keeps recording and stays armed. Returns false when nothing is armed
/// or the write failed. Cheap enough for heartbeat cadence: one render
/// of the live buffers plus one temp-file rename.
bool flush();

/// Completed flushes to the armed path since start() (includes the one
/// in flight when read from inside a flush-written file).
std::uint64_t flush_count();

// ---- emitters (no-ops unless enabled; `name`/`detail` must be
// ---- string literals or otherwise outlive the process) ----

/// Duration-begin event (ph "B"). Paired with end() by nesting order.
void begin(const char* name);
/// Duration-end event (ph "E").
void end(const char* name);
/// Counter sample (ph "C"). `value` is the sampled delta charged by the
/// matching TELEM_COUNT, not a cumulative total.
void counter(const char* name, std::int64_t value);
/// Thread-scoped instant event (ph "i"), e.g. "budget.exhausted",
/// "fault.injected", "sat.restart". `detail` lands in args.detail.
void instant(const char* name, const char* detail = nullptr);

}  // namespace odcfp::trace
