#include "common/fault.hpp"

#include <cstring>
#include <new>

#include "common/log.hpp"
#include "common/trace.hpp"

namespace odcfp::fault {

namespace detail {

std::atomic<Injector*> g_injector{nullptr};

void fire(const char* site) {
  Injector* inj = g_injector.load(std::memory_order_relaxed);
  if (inj == nullptr) return;
  // Mark the hazard on the timeline / log *before* on_point, which may
  // throw — the record must not be lost to the unwind.
  trace::instant("fault.point", site);
  if (log::enabled(log::Level::kDebug)) {
    log::debug("fault.point").field("site", site);
  }
  inj->on_point(site);
}

}  // namespace detail

Injector* install(Injector* injector) {
  return detail::g_injector.exchange(injector);
}

namespace {

bool matches(const char* site, const char* prefix) {
  return std::strncmp(site, prefix, std::strlen(prefix)) == 0;
}

}  // namespace

FailNthAlloc::FailNthAlloc(std::uint64_t nth, const char* site_prefix)
    : nth_(nth), prefix_(site_prefix) {}

void FailNthAlloc::on_point(const char* site) {
  if (!matches(site, prefix_)) return;
  if (++hits_ == nth_) {
    fired_ = true;
    throw std::bad_alloc();
  }
}

CancelAfterN::CancelAfterN(std::uint64_t nth, CancelToken token,
                           const char* site_prefix)
    : nth_(nth), token_(std::move(token)), prefix_(site_prefix) {}

void CancelAfterN::on_point(const char* site) {
  if (!matches(site, prefix_)) return;
  if (++hits_ == nth_) token_.cancel();
}

FailNthDiskFull::FailNthDiskFull(std::uint64_t nth,
                                 const char* site_prefix,
                                 std::uint64_t count,
                                 std::size_t short_bytes)
    : nth_(nth), count_(count), prefix_(site_prefix),
      short_bytes_(short_bytes) {}

void FailNthDiskFull::on_point(const char* site) {
  if (!matches(site, prefix_)) return;
  ++hits_;
  if (hits_ >= nth_ && hits_ < nth_ + count_) {
    ++fired_;
    throw InjectedDiskFull(std::string("injected disk-full at '") + site +
                               "' (hit " + std::to_string(hits_) + ")",
                           short_bytes_);
  }
}

FailNthIo::FailNthIo(std::uint64_t nth, const char* site_prefix,
                     std::uint64_t count)
    : nth_(nth), count_(count), prefix_(site_prefix) {}

void FailNthIo::on_point(const char* site) {
  if (!matches(site, prefix_)) return;
  ++hits_;
  if (hits_ >= nth_ && hits_ < nth_ + count_) {
    ++fired_;
    throw InjectedIoError(std::string("injected I/O fault at '") + site +
                          "' (hit " + std::to_string(hits_) + ")");
  }
}

}  // namespace odcfp::fault
