#include "common/fault.hpp"

#include <cstring>
#include <new>

namespace odcfp::fault {

namespace detail {

std::atomic<Injector*> g_injector{nullptr};

void fire(const char* site) {
  Injector* inj = g_injector.load(std::memory_order_relaxed);
  if (inj != nullptr) inj->on_point(site);
}

}  // namespace detail

Injector* install(Injector* injector) {
  return detail::g_injector.exchange(injector);
}

namespace {

bool matches(const char* site, const char* prefix) {
  return std::strncmp(site, prefix, std::strlen(prefix)) == 0;
}

}  // namespace

FailNthAlloc::FailNthAlloc(std::uint64_t nth, const char* site_prefix)
    : nth_(nth), prefix_(site_prefix) {}

void FailNthAlloc::on_point(const char* site) {
  if (!matches(site, prefix_)) return;
  if (++hits_ == nth_) {
    fired_ = true;
    throw std::bad_alloc();
  }
}

CancelAfterN::CancelAfterN(std::uint64_t nth, CancelToken token,
                           const char* site_prefix)
    : nth_(nth), token_(std::move(token)), prefix_(site_prefix) {}

void CancelAfterN::on_point(const char* site) {
  if (!matches(site, prefix_)) return;
  if (++hits_ == nth_) token_.cancel();
}

}  // namespace odcfp::fault
