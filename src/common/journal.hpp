// Append-only, checksummed, fsync'd write-ahead journal for resumable
// batch fingerprinting.
//
// A multi-buyer run (src/fingerprint/batch.*) records every buyer's
// lifecycle transition — queued -> embedding -> verified -> committed —
// plus a header naming the run's base seed, buyer count, and a config
// checksum, so that a process killed at ANY instant can be restarted and
// skip exactly the buyers whose artifacts are already durable. The
// journal is the recovery log, not a deterministic artifact: record
// order across buyers depends on worker scheduling; the bit-identical
// guarantee lives in the artifacts the records point at.
//
// Wire format (line-oriented, greppable on purpose):
//
//   odcfp-journal 1
//   H <crc32-hex8> seed=<u64> buyers=<u64> config=<hex8> label=<text>
//   R <crc32-hex8> seq=<u64> buyer=<u64> phase=<name> crc=<hex8> wall=<u64> artifact=<path>
//
// The checksum covers the payload after the second space. `artifact` is
// always the last field and runs to end of line (paths may contain
// spaces). `wall=` is the writer's anchored wall clock
// (src/common/clock.*) at append time; it is OPTIONAL on parse —
// journals written before the field existed (and handcrafted test
// fixtures) replay with wall_ns == 0 — so readers must treat 0 as
// "unknown", never as the epoch. It exists solely for the cross-process
// timeline (src/dist/stitch.*): replay/resume decisions ignore it. Every append is a single write(2) of a whole line to an
// O_APPEND descriptor followed by fsync, so the only way a record can be
// damaged is a torn final line from a crash mid-write.
//
// Recovery contract (read_journal):
//  * a torn FINAL record — truncated line, missing newline, checksum
//    mismatch — is tolerated: replay stops before it, torn_tail is set,
//    and Journal::append_to truncates it away before appending;
//  * a damaged NON-final record is corruption the protocol cannot have
//    produced, and replay fails with Status::kMalformedInput;
//  * a file that ends before the header was durable (crash between
//    create() and its fsync) replays as has_header == false, and the
//    caller starts the run from scratch — EXCEPT a zero-byte file, which
//    the protocol cannot produce (create() writes magic + header in one
//    write before returning) and is rejected with a distinct diagnostic
//    instead of being silently treated as fresh.
//
// Heartbeat records ("B" lines) are a sidecar liveness channel for the
// distributed supervisor (src/dist/): they carry the writer's pid and a
// beat counter, no sequence number, and never affect replay state —
// phase_of()/committed() ignore them. Their only job is to make the
// journal file grow while a worker is alive, so a supervisor watching
// the file can tell a wedged or dead worker from a slow one.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/budget.hpp"

namespace odcfp {

/// Per-buyer lifecycle phase recorded in the journal. Transitions only
/// move forward; the latest record for a buyer wins on replay.
enum class BuyerPhase : std::uint8_t {
  kQueued = 0,  ///< No record yet (implicit initial state).
  kEmbedding,   ///< A worker started stamping this buyer.
  kVerified,    ///< Embed done; extracted code matched the codeword.
  kCommitted,   ///< Artifact durable at its final path (crc recorded).
  kFailed,      ///< Permanent non-budget failure; resume retries it.
};

const char* to_string(BuyerPhase phase);
bool parse_buyer_phase(const std::string& text, BuyerPhase* out);

struct JournalHeader {
  std::uint64_t seed = 0;        ///< Base seed; per-buyer seeds re-derive.
  std::uint64_t num_buyers = 0;
  std::uint32_t config_crc = 0;  ///< Checksum of run config + golden netlist.
  std::string label;             ///< Human label (circuit name).
};

struct JournalEntry {
  std::uint64_t seq = 0;    ///< Writer-assigned, strictly increasing.
  std::uint64_t buyer = 0;
  BuyerPhase phase = BuyerPhase::kQueued;
  std::uint32_t artifact_crc = 0;  ///< crc32 of artifact bytes (committed).
  std::uint64_t wall_ns = 0;  ///< Anchored wall time of the append
                              ///< (0 = record predates the field).
  std::string artifact;            ///< Final artifact path ("" until commit).
};

struct JournalReplay {
  bool has_header = false;
  JournalHeader header;
  std::vector<JournalEntry> entries;  ///< Every intact record, in order.
  bool torn_tail = false;             ///< Final record was torn (tolerated).
  std::uint64_t valid_bytes = 0;      ///< Offset past the last intact record.
  std::uint64_t next_seq = 0;
  std::uint64_t heartbeats = 0;       ///< Intact "B" liveness records seen.
  std::uint64_t last_heartbeat = 0;   ///< Beat counter of the last one.
  /// Anchored wall time of every intact heartbeat, in file order (0 for
  /// records predating the wall= field). The report analyzer derives
  /// heartbeat-gap anomalies from consecutive differences.
  std::vector<std::uint64_t> heartbeat_walls;

  /// Latest phase per buyer (kQueued where never mentioned). Entries for
  /// buyers >= num_buyers are ignored.
  std::vector<BuyerPhase> phase_of(std::size_t num_buyers) const;
  /// Latest committed entry for `buyer`, nullptr when none.
  const JournalEntry* committed(std::uint64_t buyer) const;
};

/// Replays a journal file. kMalformedInput for an unopenable file, an
/// empty-but-existing file (which a crash cannot produce — the message
/// names the condition so operators can tell it from mid-file
/// corruption), a bad magic line, or mid-file corruption; a torn tail is
/// NOT an error.
Outcome<JournalReplay> read_journal(const std::string& path);

// Shared wire-format helpers, exported so sibling journals (the dist
// layer's lease journal) reuse the exact record framing and CRC rules
// instead of inventing a second format.
namespace journal_wire {

/// "<tag> <crc32-hex8> <payload>\n" with the CRC covering the payload.
std::string format_line(char tag, const std::string& payload);
/// Validates framing + CRC of one line (no trailing newline) and hands
/// back the payload view. False on any mismatch.
bool checked_payload(std::string_view line, char tag,
                     std::string_view* payload);
std::string header_payload(const JournalHeader& header);
bool parse_header_payload(std::string_view payload, JournalHeader* out);

}  // namespace journal_wire

/// Appending writer. Thread-safe: appends from pool workers serialize on
/// an internal mutex (each append is one durable line). Move-only.
class Journal {
 public:
  Journal();
  ~Journal();
  Journal(Journal&&) noexcept;
  Journal& operator=(Journal&&) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Creates (truncating) a journal at `path` — parent directories are
  /// made — and durably writes the magic + header before returning.
  static Outcome<Journal> create(const std::string& path,
                                 const JournalHeader& header);

  /// Opens an existing journal for appending, first truncating away the
  /// torn tail `replay` reported. Before any append can land, the magic
  /// line and the header record's CRC are re-validated against the bytes
  /// actually on disk — a replay computed from a file that has since
  /// been tampered with or swapped (possible in the multi-process world)
  /// is rejected as kMalformedInput instead of appending records onto a
  /// header that no longer checks out. Sequence numbers continue from
  /// replay.next_seq.
  static Outcome<Journal> append_to(const std::string& path,
                                    const JournalReplay& replay);

  /// Durably appends one record (fault sites journal.append /
  /// journal.fsync). On failure — real I/O error or injected fault —
  /// returns false with a diagnostic in *error; the journal stays usable
  /// for later appends (a torn line, if any, is beyond valid replay and
  /// will be dropped on the next resume).
  bool append(std::uint64_t buyer, BuyerPhase phase,
              const std::string& artifact = "",
              std::uint32_t artifact_crc = 0,
              std::string* error = nullptr);

  /// Durably appends one liveness heartbeat ("B" line carrying this
  /// process's pid and `beat`). Heartbeats consume no sequence number
  /// and never affect replay state; a failure is reported but leaves the
  /// journal usable (liveness is advisory, lifecycle records gate).
  bool heartbeat(std::uint64_t beat, std::string* error = nullptr);

  bool is_open() const;
  const std::string& path() const;
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace odcfp
