#include "common/clock.hpp"

#include <chrono>

namespace odcfp::clocks {

namespace {

std::uint64_t steady_raw_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ClockAnchor sample_anchor() {
  // Read steady on both sides of the wall read and midpoint: the pairing
  // error is at most half the window, regardless of scheduling jitter
  // between the three reads.
  const std::uint64_t s0 = steady_raw_ns();
  const std::uint64_t wall = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  const std::uint64_t s1 = steady_raw_ns();
  ClockAnchor anchor;
  anchor.wall_ns = wall;
  anchor.steady_ns = s0 + (s1 - s0) / 2;
  return anchor;
}

}  // namespace

const ClockAnchor& process_anchor() {
  static const ClockAnchor anchor = sample_anchor();
  return anchor;
}

std::uint64_t steady_now_ns() { return steady_raw_ns(); }

std::uint64_t wall_from_steady(std::uint64_t steady_ns) {
  const ClockAnchor& a = process_anchor();
  return a.wall_ns + (steady_ns - a.steady_ns);
}

std::uint64_t anchored_wall_now_ns() {
  return wall_from_steady(steady_raw_ns());
}

}  // namespace odcfp::clocks
