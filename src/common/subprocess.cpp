#include "common/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace odcfp::proc {

const char* to_string(SpawnError e) {
  switch (e) {
    case SpawnError::kNone: return "none";
    case SpawnError::kEmptyArgv: return "empty_argv";
    case SpawnError::kOpenFailed: return "open_failed";
    case SpawnError::kFdExhausted: return "fd_exhausted";
    case SpawnError::kForkFailed: return "fork_failed";
  }
  return "unknown";
}

namespace {

void set_spawn_error(std::string* error, SpawnError* error_kind,
                     SpawnError kind, const std::string& diag) {
  if (error != nullptr) *error = diag;
  if (error_kind != nullptr) *error_kind = kind;
}

/// Opens a redirect target in the parent. Returns the fd, or -1 with the
/// error reported through (error, error_kind) — EMFILE/ENFILE become the
/// distinct kFdExhausted so supervisors can tell "this machine is out of
/// descriptors" from "the log directory is missing".
int open_redirect(const std::string& path, std::string* error,
                  SpawnError* error_kind) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd >= 0) return fd;
  const int saved = errno;
  const SpawnError kind = (saved == EMFILE || saved == ENFILE)
                              ? SpawnError::kFdExhausted
                              : SpawnError::kOpenFailed;
  set_spawn_error(error, error_kind, kind,
                  std::string("spawn: open redirect '") + path +
                      "': " + std::strerror(saved));
  return -1;
}

}  // namespace

pid_t spawn(const std::vector<std::string>& argv, const SpawnOptions& options,
            std::string* error, SpawnError* error_kind) {
  if (error_kind != nullptr) *error_kind = SpawnError::kNone;
  if (argv.empty()) {
    set_spawn_error(error, error_kind, SpawnError::kEmptyArgv,
                    "spawn: empty argv");
    return -1;
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  // Redirect targets open in the parent, before fork: open failures are
  // typed errors here, not a child that dies before exec.
  int out_fd = -1;
  int err_fd = -1;
  if (!options.stdout_path.empty()) {
    out_fd = open_redirect(options.stdout_path, error, error_kind);
    if (out_fd < 0) return -1;
  }
  if (!options.stderr_path.empty()) {
    if (options.stderr_path == options.stdout_path) {
      err_fd = out_fd;  // shared descriptor: interleaved, not clobbered
    } else {
      err_fd = open_redirect(options.stderr_path, error, error_kind);
      if (err_fd < 0) {
        if (out_fd >= 0) ::close(out_fd);
        return -1;
      }
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    set_spawn_error(error, error_kind, SpawnError::kForkFailed,
                    std::string("fork: ") + std::strerror(errno));
    if (out_fd >= 0) ::close(out_fd);
    if (err_fd >= 0 && err_fd != out_fd) ::close(err_fd);
    return -1;
  }
  if (pid == 0) {
    // Child. Die with the parent: a SIGKILLed supervisor must never
    // leave an orphan racing its successor for the same shard journal.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    // The parent could already be gone between fork and prctl.
    if (::getppid() == 1) ::_exit(127);
    // dup2 clears O_CLOEXEC on the target descriptor, so the redirects
    // survive exec while the originals (CLOEXEC) do not leak.
    if (out_fd >= 0 && ::dup2(out_fd, STDOUT_FILENO) < 0) ::_exit(125);
    if (err_fd >= 0 && ::dup2(err_fd, STDERR_FILENO) < 0) ::_exit(125);
    ::execv(cargv[0], cargv.data());
    // exec failed: _exit only (no unwinding in a forked child).
    ::_exit(126);
  }
  if (out_fd >= 0) ::close(out_fd);
  if (err_fd >= 0 && err_fd != out_fd) ::close(err_fd);
  log::info("proc.spawned").field("pid", pid).field("binary", argv[0]);
  return pid;
}

pid_t spawn(const std::vector<std::string>& argv, std::string* error) {
  return spawn(argv, SpawnOptions{}, error, nullptr);
}

bool alive(pid_t pid) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) == 0) return true;
  // EPERM: the process exists but belongs to someone else.
  return errno == EPERM;
}

WaitResult try_wait(pid_t pid, int* exit_code, int* term_signal) {
  int wstatus = 0;
  const pid_t got = ::waitpid(pid, &wstatus, WNOHANG);
  if (got == 0) return WaitResult::kRunning;
  if (got != pid) return WaitResult::kLost;
  if (WIFEXITED(wstatus)) {
    if (exit_code != nullptr) *exit_code = WEXITSTATUS(wstatus);
    return WaitResult::kExited;
  }
  if (WIFSIGNALED(wstatus)) {
    if (term_signal != nullptr) *term_signal = WTERMSIG(wstatus);
    return WaitResult::kSignaled;
  }
  return WaitResult::kRunning;  // stopped/continued: still a live child
}

void kill_hard(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  // Reap if it is ours; ECHILD (not our child / already reaped) is fine.
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
}

}  // namespace odcfp::proc
