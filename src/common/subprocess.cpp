#include "common/subprocess.hpp"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.hpp"

namespace odcfp::proc {

pid_t spawn(const std::vector<std::string>& argv, std::string* error) {
  if (argv.empty()) {
    if (error != nullptr) *error = "spawn: empty argv";
    return -1;
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) {
      *error = std::string("fork: ") + std::strerror(errno);
    }
    return -1;
  }
  if (pid == 0) {
    // Child. Die with the parent: a SIGKILLed supervisor must never
    // leave an orphan racing its successor for the same shard journal.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    // The parent could already be gone between fork and prctl.
    if (::getppid() == 1) ::_exit(127);
    ::execv(cargv[0], cargv.data());
    // exec failed: _exit only (no unwinding in a forked child).
    ::_exit(126);
  }
  log::info("proc.spawned").field("pid", pid).field("binary", argv[0]);
  return pid;
}

bool alive(pid_t pid) {
  if (pid <= 0) return false;
  if (::kill(pid, 0) == 0) return true;
  // EPERM: the process exists but belongs to someone else.
  return errno == EPERM;
}

WaitResult try_wait(pid_t pid, int* exit_code, int* term_signal) {
  int wstatus = 0;
  const pid_t got = ::waitpid(pid, &wstatus, WNOHANG);
  if (got == 0) return WaitResult::kRunning;
  if (got != pid) return WaitResult::kLost;
  if (WIFEXITED(wstatus)) {
    if (exit_code != nullptr) *exit_code = WEXITSTATUS(wstatus);
    return WaitResult::kExited;
  }
  if (WIFSIGNALED(wstatus)) {
    if (term_signal != nullptr) *term_signal = WTERMSIG(wstatus);
    return WaitResult::kSignaled;
  }
  return WaitResult::kRunning;  // stopped/continued: still a live child
}

void kill_hard(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  // Reap if it is ours; ECHILD (not our child / already reaped) is fine.
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
}

}  // namespace odcfp::proc
