#include "common/telemetry.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/trace.hpp"

namespace odcfp::telemetry {

namespace {

using Clock = std::chrono::steady_clock;

bool initial_enabled() {
  const char* v = std::getenv("ODCFP_TELEMETRY");
  return !(v != nullptr && v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag(initial_enabled());
  return flag;
}

/// One node of a thread's private shadow tree. Children and counters are
/// small linear vectors: the branch factor of real span trees is a
/// handful, and a pointer compare short-circuits the common case where
/// the same TELEM_SPAN literal is seen again.
struct LocalNode {
  const char* name;  ///< Static-storage string (span-name literal).
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::vector<std::pair<const char*, std::int64_t>> counters;
  std::vector<std::pair<const char*, metrics::HistData>> hists;
  std::vector<std::unique_ptr<LocalNode>> children;

  explicit LocalNode(const char* n) : name(n) {}

  LocalNode* child(const char* child_name) {
    for (auto& c : children) {
      if (c->name == child_name ||
          std::strcmp(c->name, child_name) == 0) {
        return c.get();
      }
    }
    children.push_back(std::make_unique<LocalNode>(child_name));
    return children.back().get();
  }

  void add_counter(const char* counter_name, std::int64_t n) {
    for (auto& [cn, v] : counters) {
      if (cn == counter_name || std::strcmp(cn, counter_name) == 0) {
        v += n;
        return;
      }
    }
    counters.emplace_back(counter_name, n);
  }

  void add_hist(const char* hist_name, std::uint64_t v) {
    for (auto& [hn, h] : hists) {
      if (hn == hist_name || std::strcmp(hn, hist_name) == 0) {
        h.record(v);
        return;
      }
    }
    hists.emplace_back(hist_name, metrics::HistData{});
    hists.back().second.record(v);
  }

  void clear() {
    count = 0;
    total_ns = 0;
    counters.clear();
    hists.clear();
    children.clear();
  }

  bool empty() const {
    return count == 0 && total_ns == 0 && counters.empty() &&
           hists.empty() && children.empty();
  }
};

struct Frame {
  LocalNode* node;
  Clock::time_point start;
  bool timed;  ///< false for AttachScope's structural frames.
};

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

Node& registry_root() {
  static Node root;
  return root;
}

/// Additive merge: commutative and associative, so the global tree is
/// independent of which thread flushes first.
void merge_into(Node& dst, const LocalNode& src) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  for (const auto& [name, v] : src.counters) {
    dst.counters[std::string(name)] += v;
  }
  for (const auto& [name, h] : src.hists) {
    dst.hists[std::string(name)].merge(h);
  }
  for (const auto& c : src.children) {
    merge_into(dst.children[std::string(c->name)], *c);
  }
}

struct ThreadSink {
  LocalNode root{""};
  std::vector<Frame> stack;
  /// Stacks suspended by live AttachScopes (restored on scope exit).
  /// Each entry also records how many structural frames the scope
  /// pushed, so its destructor knows how far to unwind.
  struct Saved {
    std::vector<Frame> frames;
    std::size_t attach_depth;
  };
  std::vector<Saved> saved;

  ~ThreadSink() { flush(/*force=*/true); }

  /// Merges the shadow tree into the registry and clears it. Unless
  /// forced (thread exit), refuses while frames are open — they hold
  /// pointers into the shadow tree.
  void flush(bool force = false) {
    if (!force && (!stack.empty() || !saved.empty())) return;
    if (root.empty()) return;
    std::lock_guard<std::mutex> lock(registry_mutex());
    merge_into(registry_root(), root);
    root.clear();
  }

  LocalNode* current() {
    return stack.empty() ? &root : stack.back().node;
  }
};

ThreadSink& sink() {
  thread_local ThreadSink s;
  return s;
}

}  // namespace

bool enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (trace::enabled()) {
    trace::begin(name);
    trace_name_ = name;
  }
  if (!enabled()) return;
  ThreadSink& s = sink();
  s.stack.push_back(
      {s.current()->child(name), Clock::now(), /*timed=*/true});
  active_ = true;
}

Span::~Span() {
  if (trace_name_ != nullptr) trace::end(trace_name_);
  if (!active_) return;
  ThreadSink& s = sink();
  if (s.stack.empty()) return;  // defensive: mismatched scopes
  const Frame f = s.stack.back();
  s.stack.pop_back();
  if (f.timed) {
    f.node->count += 1;
    f.node->total_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - f.start)
            .count());
  }
  s.flush();
}

void count(const char* name, std::int64_t n) {
  if (trace::enabled()) trace::counter(name, n);
  if (!enabled()) return;
  sink().current()->add_counter(name, n);
}

void hist(const char* name, std::uint64_t value) {
  if (trace::enabled()) {
    trace::counter(name, static_cast<std::int64_t>(value));
  }
  if (!enabled()) return;
  sink().current()->add_hist(name, value);
}

HistTimer::HistTimer(const char* name) {
  if (!enabled()) return;
  name_ = name;
  start_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

HistTimer::~HistTimer() {
  if (name_ == nullptr) return;
  const std::uint64_t now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
  // Record even if telemetry was toggled off mid-scope: the sample was
  // armed, and dropping it would make disable() racy with open timers.
  sink().current()->add_hist(name_, now_ns - start_ns_);
}

const char* current_span_name() {
  if (!enabled()) return nullptr;
  ThreadSink& s = sink();
  return s.stack.empty() ? nullptr : s.stack.back().node->name;
}

std::vector<const char*> current_path() {
  std::vector<const char*> path;
  if (!enabled()) return path;
  ThreadSink& s = sink();
  path.reserve(s.stack.size());
  for (const Frame& f : s.stack) path.push_back(f.node->name);
  return path;
}

AttachScope::AttachScope(const std::vector<const char*>& path) {
  if (trace::enabled() && !path.empty()) {
    // Paint the attach path onto this worker's trace track; the copies
    // are needed because `path` is the caller's and may die before ~.
    traced_.assign(path.begin(), path.end());
    for (const char* name : traced_) trace::begin(name);
  }
  if (!enabled()) return;
  ThreadSink& s = sink();
  s.saved.push_back({std::move(s.stack), path.size()});
  s.stack.clear();
  for (const char* name : path) {
    s.stack.push_back({s.current()->child(name), {}, /*timed=*/false});
  }
  active_ = true;
}

AttachScope::~AttachScope() {
  for (auto it = traced_.rbegin(); it != traced_.rend(); ++it) {
    trace::end(*it);
  }
  if (!active_) return;
  ThreadSink& s = sink();
  if (s.saved.empty()) return;  // defensive: mismatched scopes
  ThreadSink::Saved restored = std::move(s.saved.back());
  s.saved.pop_back();
  // All spans opened inside the scope are lexical and already closed;
  // only the structural attach frames remain.
  const std::size_t keep =
      s.stack.size() >= restored.attach_depth
          ? s.stack.size() - restored.attach_depth
          : 0;
  s.stack.resize(keep);
  if (s.stack.empty()) {
    s.stack = std::move(restored.frames);
  } else {
    // Mismatched nesting; drop the saved frames rather than interleave.
    s.stack.insert(s.stack.begin(), restored.frames.begin(),
                   restored.frames.end());
  }
  s.flush();
}

void flush_thread() { sink().flush(); }

Node snapshot() {
  flush_thread();
  std::lock_guard<std::mutex> lock(registry_mutex());
  return registry_root();
}

void reset() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry_root() = Node{};
}

const Node* Node::find(
    std::initializer_list<std::string_view> path) const {
  const Node* n = this;
  for (std::string_view name : path) {
    auto it = n->children.find(std::string(name));
    if (it == n->children.end()) return nullptr;
    n = &it->second;
  }
  return n;
}

std::int64_t Node::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

const metrics::HistData* Node::hist(std::string_view name) const {
  auto it = hists.find(std::string(name));
  return it == hists.end() ? nullptr : &it->second;
}

metrics::HistData Node::hist_total(std::string_view name) const {
  metrics::HistData total;
  if (const metrics::HistData* h = hist(name)) total.merge(*h);
  for (const auto& [child_name, child] : children) {
    total.merge(child.hist_total(name));
  }
  return total;
}

// ---- export ----

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_hist_json(std::ostream& os, const metrics::HistData& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"buckets\":[";
  bool first = true;
  for (std::uint64_t b : h.buckets) {
    if (!first) os << ',';
    first = false;
    os << b;
  }
  os << "]}";
}

void write_node_json(std::ostream& os, const Node& node) {
  os << "{\"count\":" << node.count << ",\"total_ns\":" << node.total_ns
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : node.counters) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':' << v;
  }
  os << '}';
  // Emitted only when present, so trees without histograms serialize
  // byte-identically to the pre-histogram format.
  if (!node.hists.empty()) {
    os << ",\"hists\":{";
    first = true;
    for (const auto& [name, h] : node.hists) {
      if (!first) os << ',';
      first = false;
      write_escaped(os, name);
      os << ':';
      write_hist_json(os, h);
    }
    os << '}';
  }
  os << ",\"children\":{";
  first = true;
  for (const auto& [name, child] : node.children) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':';
    write_node_json(os, child);
  }
  os << "}}";
}

void write_node_jsonl(std::ostream& os, const Node& node,
                      const std::string& path) {
  os << "{\"path\":";
  write_escaped(os, path.empty() ? "/" : path);
  os << ",\"count\":" << node.count << ",\"total_ns\":" << node.total_ns
     << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : node.counters) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, name);
    os << ':' << v;
  }
  os << '}';
  if (!node.hists.empty()) {
    os << ",\"hists\":{";
    first = true;
    for (const auto& [name, h] : node.hists) {
      if (!first) os << ',';
      first = false;
      write_escaped(os, name);
      const metrics::HistSummary q = metrics::summarize(h);
      os << ":{\"count\":" << h.count << ",\"sum\":" << h.sum
         << ",\"p50\":" << q.p50 << ",\"p90\":" << q.p90
         << ",\"p99\":" << q.p99 << '}';
    }
    os << '}';
  }
  os << "}\n";
  for (const auto& [name, child] : node.children) {
    write_node_jsonl(os, child, path + "/" + name);
  }
}

void dump_node(std::ostream& os, const Node& node, const std::string& name,
               int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  os << pad << (name.empty() ? "(root)" : name);
  if (node.count > 0) {
    const double ms = static_cast<double>(node.total_ns) / 1e6;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  x%llu  %.3f ms",
                  static_cast<unsigned long long>(node.count), ms);
    os << buf;
    if (node.count > 1) {
      std::snprintf(buf, sizeof(buf), "  (%.3f ms/ea)",
                    ms / static_cast<double>(node.count));
      os << buf;
    }
  }
  os << '\n';
  for (const auto& [cname, v] : node.counters) {
    os << pad << "  . " << cname << " = " << v << '\n';
  }
  for (const auto& [hname, h] : node.hists) {
    const metrics::HistSummary q = metrics::summarize(h);
    os << pad << "  ~ " << hname << "  n=" << h.count
       << "  p50<=" << q.p50 << "  p90<=" << q.p90 << "  p99<=" << q.p99
       << '\n';
  }
  for (const auto& [cname, child] : node.children) {
    dump_node(os, child, cname, indent + 1);
  }
}

}  // namespace

void dump_tree(std::ostream& os) {
  const Node root = snapshot();
  dump_tree(os, root);
}

void dump_tree(std::ostream& os, const Node& root) {
  dump_node(os, root, "", 0);
}

void write_json(std::ostream& os) {
  const Node root = snapshot();
  write_node_json(os, root);
}

void write_json(std::ostream& os, const Node& root) {
  write_node_json(os, root);
}

std::string to_json(const Node& root) {
  std::ostringstream os;
  write_node_json(os, root);
  return os.str();
}

void write_jsonl(std::ostream& os) {
  const Node root = snapshot();
  write_jsonl(os, root);
}

void write_jsonl(std::ostream& os, const Node& root) {
  write_node_jsonl(os, root, "");
}

// ---- parsing (round-trip of write_json's output subset) ----

namespace {

struct Parser {
  std::string_view s;
  std::size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    ODCFP_CHECK_MSG(false, "telemetry JSON parse error at offset "
                               << pos << ": " << what);
    std::abort();  // unreachable; CHECK throws
  }

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
            s[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    skip_ws();
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }

  bool try_consume(char c) {
    if (pos < s.size() && peek() == c) {
      ++pos;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < s.size() && s[pos] != '"') {
      char c = s[pos++];
      if (c == '\\') {
        if (pos >= s.size()) fail("dangling escape");
        const char e = s[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > s.size()) fail("short \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s[pos++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u digit");
            }
            out += static_cast<char>(v);  // control chars only
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (pos >= s.size()) fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  std::int64_t parse_int() {
    skip_ws();
    bool neg = false;
    if (pos < s.size() && s[pos] == '-') {
      neg = true;
      ++pos;
    }
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') {
      fail("expected digit");
    }
    std::int64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      v = v * 10 + (s[pos] - '0');
      ++pos;
    }
    return neg ? -v : v;
  }

  metrics::HistData parse_hist() {
    metrics::HistData h;
    expect('{');
    if (try_consume('}')) return h;
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      if (key == "count") {
        h.count = static_cast<std::uint64_t>(parse_int());
      } else if (key == "sum") {
        h.sum = static_cast<std::uint64_t>(parse_int());
      } else if (key == "buckets") {
        expect('[');
        if (!try_consume(']')) {
          for (;;) {
            h.buckets.push_back(
                static_cast<std::uint64_t>(parse_int()));
            if (try_consume(']')) break;
            expect(',');
          }
        }
      } else {
        fail("unknown hist key");
      }
      if (try_consume('}')) break;
      expect(',');
    }
    return h;
  }

  Node parse_node() {
    Node node;
    expect('{');
    if (try_consume('}')) return node;
    for (;;) {
      const std::string key = parse_string();
      expect(':');
      if (key == "count") {
        node.count = static_cast<std::uint64_t>(parse_int());
      } else if (key == "total_ns") {
        node.total_ns = static_cast<std::uint64_t>(parse_int());
      } else if (key == "counters") {
        expect('{');
        if (!try_consume('}')) {
          for (;;) {
            const std::string name = parse_string();
            expect(':');
            node.counters[name] = parse_int();
            if (try_consume('}')) break;
            expect(',');
          }
        }
      } else if (key == "hists") {
        expect('{');
        if (!try_consume('}')) {
          for (;;) {
            const std::string name = parse_string();
            expect(':');
            node.hists[name] = parse_hist();
            if (try_consume('}')) break;
            expect(',');
          }
        }
      } else if (key == "children") {
        expect('{');
        if (!try_consume('}')) {
          for (;;) {
            const std::string name = parse_string();
            expect(':');
            node.children[name] = parse_node();
            if (try_consume('}')) break;
            expect(',');
          }
        }
      } else {
        fail("unknown key");
      }
      if (try_consume('}')) break;
      expect(',');
    }
    return node;
  }
};

}  // namespace

Node parse_json(std::string_view json) {
  Parser p{json};
  Node node = p.parse_node();
  p.skip_ws();
  ODCFP_CHECK_MSG(p.pos == json.size(),
                  "telemetry JSON parse error: trailing data at offset "
                      << p.pos);
  return node;
}

}  // namespace odcfp::telemetry
