// Deterministic fault-injection hooks.
//
// Long-running layers mark their hazardous moments — allocations that grow
// core structures, per-iteration checkpoints of the heuristics, parser
// progress — with ODCFP_FAULT_POINT("layer.site"). In production no
// injector is installed and a fault point is a single relaxed atomic load
// of a null pointer. The fault-injection test suite installs an injector
// that throws (simulated allocation failure) or trips a cancellation
// token (simulated mid-flight budget expiry) at a chosen hit count,
// making "the 17th allocation fails" a deterministic, replayable event.
//
// Defining ODCFP_DISABLE_FAULT_POINTS compiles the hooks out entirely for
// builds that must not carry even the null check.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/budget.hpp"

namespace odcfp::fault {

/// Test-installed fault source. on_point may throw to simulate a fault at
/// the marked site, or flip external state (e.g. cancel a Budget's token).
class Injector {
 public:
  virtual ~Injector() = default;
  virtual void on_point(const char* site) = 0;
};

namespace detail {
extern std::atomic<Injector*> g_injector;
void fire(const char* site);
}  // namespace detail

/// Installs a process-wide injector (tests only; not re-entrant). Pass
/// nullptr to uninstall. The previous injector is returned.
Injector* install(Injector* injector);

/// Scoped install/uninstall for tests.
class ScopedInjector {
 public:
  explicit ScopedInjector(Injector* injector)
      : previous_(install(injector)) {}
  ~ScopedInjector() { install(previous_); }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

 private:
  Injector* previous_;
};

inline void point(const char* site) {
#ifndef ODCFP_DISABLE_FAULT_POINTS
  if (detail::g_injector.load(std::memory_order_relaxed) != nullptr) {
    detail::fire(site);
  }
#else
  (void)site;
#endif
}

// ---- stock injectors used by the harness ----

/// Throws std::bad_alloc on the nth (1-based) hit of a site whose name
/// starts with `site_prefix` (empty = every site). Counts all hits so a
/// sweep over n enumerates every allocation-order fault deterministically.
class FailNthAlloc : public Injector {
 public:
  FailNthAlloc(std::uint64_t nth, const char* site_prefix = "");
  void on_point(const char* site) override;

  std::uint64_t hits() const { return hits_; }
  bool fired() const { return fired_; }

 private:
  std::uint64_t nth_;
  const char* prefix_;
  std::uint64_t hits_ = 0;
  bool fired_ = false;
};

/// Cancels a Budget's token after the nth matching hit — simulates a
/// request deadline expiring at an arbitrary point mid-computation.
class CancelAfterN : public Injector {
 public:
  CancelAfterN(std::uint64_t nth, CancelToken token,
               const char* site_prefix = "");
  void on_point(const char* site) override;

  std::uint64_t hits() const { return hits_; }

 private:
  std::uint64_t nth_;
  CancelToken token_;
  const char* prefix_;
  std::uint64_t hits_ = 0;
};

/// Thrown by FailNthIo at a marked I/O hazard (the fsync/rename/append
/// sites of atomic_io and the write-ahead journal) — a simulated
/// transient I/O fault (EIO, short write, full disk). atomic_io and
/// Journal convert it into their error-return contracts; the retry layer
/// (common/retry.hpp) classifies it transient.
class InjectedIoError : public std::runtime_error {
 public:
  explicit InjectedIoError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by FailNthDiskFull: the device filled mid-write (ENOSPC). The
/// distinguishing feature vs a plain InjectedIoError is `short_bytes` —
/// the number of bytes the kernel accepted before failing. The marked
/// write sites (journal append, atomic_io publish) honor it by actually
/// writing that prefix to disk, so the test observes a genuinely
/// truncated record/temp file and must prove it is rejected-and-recovered
/// rather than committed. Derives InjectedIoError so the retry layer
/// still classifies a recovered disk as transient.
class InjectedDiskFull : public InjectedIoError {
 public:
  InjectedDiskFull(const std::string& what, std::size_t short_bytes_arg)
      : InjectedIoError(what), short_bytes(short_bytes_arg) {}

  std::size_t short_bytes;
};

/// Throws InjectedDiskFull on matching hits nth .. nth+count-1 (1-based),
/// then passes hits through again — "the disk filled, `count` writes
/// landed short, then space was freed".
class FailNthDiskFull : public Injector {
 public:
  FailNthDiskFull(std::uint64_t nth, const char* site_prefix = "",
                  std::uint64_t count = 1, std::size_t short_bytes = 0);
  void on_point(const char* site) override;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t fired() const { return fired_; }

 private:
  std::uint64_t nth_;
  std::uint64_t count_;
  const char* prefix_;
  std::size_t short_bytes_;
  std::uint64_t hits_ = 0;
  std::uint64_t fired_ = 0;
};

/// Throws InjectedIoError on matching hits nth .. nth+count-1 (1-based),
/// then passes hits through again — "the disk misbehaved `count` times
/// and recovered", the shape retry_with_backoff is built to absorb.
class FailNthIo : public Injector {
 public:
  FailNthIo(std::uint64_t nth, const char* site_prefix = "",
            std::uint64_t count = 1);
  void on_point(const char* site) override;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t fired() const { return fired_; }

 private:
  std::uint64_t nth_;
  std::uint64_t count_;
  const char* prefix_;
  std::uint64_t hits_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace odcfp::fault

#ifndef ODCFP_DISABLE_FAULT_POINTS
#define ODCFP_FAULT_POINT(site) ::odcfp::fault::point(site)
#else
#define ODCFP_FAULT_POINT(site) ((void)0)
#endif
