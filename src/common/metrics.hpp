// Deterministic fixed-log2-bucket histograms for the telemetry plane.
//
// A HistData is a multiset of unsigned samples compressed into 65
// power-of-two buckets: bucket 0 holds the value 0, bucket b (1..64)
// holds [2^(b-1), 2^b). The bucket vector plus an exact count and sum is
// everything a histogram carries — no per-sample storage, no floats —
// which buys the two properties the rest of the system leans on:
//
//  * Deterministic merge. merge() is an elementwise add, commutative and
//    associative, so the merged histogram depends only on the multiset
//    of recorded values, never on thread scheduling or shard geometry.
//    A histogram whose recorded VALUES are scheduling-free (SAT
//    conflicts per call, window-ODC cone sizes, artifact byte sizes) is
//    therefore bit-identical at any thread/shard count and safe to gate
//    in CI; one whose values are wall-clock (*_ns names) is
//    informational only and excluded from gates by the same time-like
//    name rule that already exempts total_ns (tools/bench_diff.py).
//
//  * Pure-function quantiles. quantile_permille() walks the cumulative
//    bucket counts with integer arithmetic only: its output is a pure
//    function of the bucket vector, so p50/p90/p99 summaries are as
//    reproducible as the buckets themselves. The estimate is the upper
//    bound of the bucket holding the requested rank — at most 2x the
//    true sample, the usual log2-bucket resolution.
//
// Recording into the telemetry shadow tree (TELEM_HIST, lock-free
// per-thread, zero-allocation disabled mode, JSON export) lives in
// common/telemetry.hpp; this header is the bucket math and is
// deliberately telemetry-free so src/dist/status.* can reuse it.
#pragma once

#include <cstdint>
#include <vector>

namespace odcfp::metrics {

/// Bucket 0 plus one bucket per bit position of a 64-bit value.
inline constexpr int kMaxHistBuckets = 65;

/// Bucket index of `v`: 0 for 0, else bit_width(v) — so bucket b >= 1
/// holds exactly the values with b significant bits, [2^(b-1), 2^b).
int hist_bucket(std::uint64_t v);

/// Smallest value bucket `b` can hold (0 for bucket 0).
std::uint64_t hist_bucket_min(int b);

/// Largest value bucket `b` can hold (0 for bucket 0; UINT64_MAX for 64).
std::uint64_t hist_bucket_max(int b);

/// One histogram: exact count and sum, log2 bucket counts. The bucket
/// vector is trimmed — its size is one past the highest nonzero bucket —
/// so equality and serialization are canonical.
struct HistData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> buckets;

  bool operator==(const HistData&) const = default;

  bool empty() const { return count == 0; }

  /// Adds one sample.
  void record(std::uint64_t v);

  /// Elementwise add of `other` (commutative, associative).
  void merge(const HistData& other);

  /// Upper bound of the bucket holding the sample of 1-based rank
  /// ceil(count * q / 1000); 0 when empty. q is clamped to [0, 1000].
  /// Integer arithmetic only: a pure function of the bucket counts.
  std::uint64_t quantile_permille(unsigned q) const;
};

/// The three summary quantiles every consumer wants.
struct HistSummary {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

HistSummary summarize(const HistData& h);

}  // namespace odcfp::metrics
