// Deterministic fork/join parallelism for the batch-serving layers.
//
// The pipeline's hot paths — per-primary-gate location analysis, stamping
// N buyer editions, fanning CEC of every edition against the golden
// netlist — are embarrassingly parallel: each work item reads shared
// immutable inputs (the golden Netlist, the Codebook, the analyzers,
// which hold no mutable caches) and writes only its own result slot.
// ThreadPool::parallel_for exploits exactly that shape and nothing more.
//
// Determinism contract: parallel_for assigns work items to threads
// dynamically (atomic work-stealing counter), but every item `i` writes
// only results keyed by `i`, so the *assembled* result vector is
// byte-identical for any thread count — including the inline serial path
// used when the pool is null. Callers must not branch on execution order;
// reductions happen on the caller thread in index order after the join.
// The only sanctioned nondeterminism is *which* items complete when a
// Budget dies mid-loop: exhaustion stops the issue of new indices, and
// every unexecuted item keeps whatever "skipped" default the caller
// pre-filled (the batch layer tags those Status::kExhausted).
//
// Cancellation: parallel_for polls the Budget (deadline, step quota, and
// the shared CancelToken from PR 1) between items, so a serving layer can
// abandon a whole fan-out from another thread; the loop then joins and
// returns Status::kExhausted instead of killing threads mid-item.
//
// Exceptions: the first exception thrown by any item aborts the issue of
// new indices, the loop joins, and the exception is rethrown on the
// calling thread (CheckError from a worker propagates like serial code).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/budget.hpp"

namespace odcfp {

/// A fixed pool of worker threads for fork/join loops. The constructing
/// thread participates in every loop, so ThreadPool(1) spawns no workers
/// and runs loops inline; ThreadPool(4) spawns three workers.
///
/// One loop runs at a time; a parallel_for issued while another loop is
/// in flight (nested parallelism, or a second caller thread) safely
/// degrades to inline serial execution instead of deadlocking.
class ThreadPool {
 public:
  /// num_threads <= 0 selects the hardware concurrency (at least 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism degree (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(i) for every i in [0, n), distributing items across the
  /// pool; blocks until every started item finished. Returns kOk when all
  /// n items ran, kExhausted when `budget` died first (remaining items
  /// were never started). Rethrows the first item exception.
  Status parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& body,
                      const Budget* budget = nullptr);

 private:
  struct ForLoop;

  void worker_main();
  static void run_items(ForLoop& loop);
  Status run_serial(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    const Budget* budget);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  ForLoop* loop_ = nullptr;  ///< In-flight loop; guarded by mu_.
  bool stopping_ = false;
};

/// Pool-optional entry point: runs serially (still honoring `budget`)
/// when `pool` is null — the degradation path for single-core serving.
Status parallel_for(ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    const Budget* budget = nullptr);

/// Maps fn over [0, n) into a result vector with deterministic (index)
/// ordering. R must be default-constructible; items skipped on budget
/// exhaustion keep the default-constructed value, and the returned Status
/// says whether that happened.
template <typename Fn>
auto parallel_map(ThreadPool* pool, std::size_t n, Fn&& fn,
                  const Budget* budget = nullptr)
    -> std::pair<std::vector<decltype(fn(std::size_t{}))>, Status> {
  std::vector<decltype(fn(std::size_t{}))> out(n);
  const Status status = parallel_for(
      pool, n, [&](std::size_t i) { out[i] = fn(i); }, budget);
  return {std::move(out), status};
}

}  // namespace odcfp
