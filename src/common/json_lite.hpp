// Minimal recursive-descent JSON parser for small, trusted inputs.
//
// Grown out of the test suite's JSON-validity checker: the trace
// stitcher (src/dist/stitch.*) must read back the Chrome trace files
// this codebase itself wrote, and the production parsers cannot —
// telemetry::parse_json knows only the telemetry-node shape. This
// header parses arbitrary JSON into a small DOM and throws
// std::runtime_error with an offset on the first syntax error.
//
// Deliberately NOT a general-purpose parser: no surrogate-pair decoding
// (non-ASCII \u escapes collapse to '?'), no depth limit, whole input in
// memory. Numbers keep their raw source text (Value::raw) alongside the
// double, so consumers that must not lose integer precision — 64-bit
// nanosecond timestamps — can re-parse the exact digits instead of
// trusting a double round-trip.
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace odcfp::jsonlite {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw;  ///< Exact source text of a kNumber literal.
  std::string str;
  std::vector<Value> items;                            ///< kArray
  std::vector<std::pair<std::string, Value>> members;  ///< kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  bool has(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return true;
    }
    return false;
  }

  /// Object member lookup; throws when missing so a failed expectation
  /// names the key instead of segfaulting.
  const Value& at(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return v;
    }
    throw std::runtime_error("jsonlite: no member '" + key + "'");
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("jsonlite: " + what + " at offset " +
                             std::to_string(i_));
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool consume_word(std::string_view w) {
    if (s_.substr(i_, w.size()) != w) return false;
    i_ += w.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = string();
        return v;
      }
      case 't':
        if (!consume_word("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_word("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_word("null")) fail("bad literal");
        return Value{};
      default: return number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Value::Type::kBool;
    v.boolean = b;
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) fail("unterminated string");
      char c = s_[i_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u hex digit");
            }
          }
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           ((s_[i_] >= '0' && s_[i_] <= '9') || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' ||
            s_[i_] == '-')) {
      ++i_;
    }
    if (i_ == start || (i_ == start + 1 && s_[start] == '-')) {
      fail("expected a JSON value");
    }
    const std::string text(s_.substr(start, i_ - start));
    char* end = nullptr;
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    v.raw = text;
    return v;
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

inline Value parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace odcfp::jsonlite
