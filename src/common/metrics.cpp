#include "common/metrics.hpp"

#include <bit>
#include <limits>

namespace odcfp::metrics {

int hist_bucket(std::uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

std::uint64_t hist_bucket_min(int b) {
  if (b <= 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t hist_bucket_max(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << b) - 1;
}

void HistData::record(std::uint64_t v) {
  const int b = hist_bucket(v);
  if (buckets.size() <= static_cast<std::size_t>(b)) {
    buckets.resize(static_cast<std::size_t>(b) + 1, 0);
  }
  ++buckets[static_cast<std::size_t>(b)];
  ++count;
  sum += v;
}

void HistData::merge(const HistData& other) {
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

std::uint64_t HistData::quantile_permille(unsigned q) const {
  if (count == 0) return 0;
  if (q > 1000) q = 1000;
  // rank = ceil(count * q / 1000), at least 1 so q=0 reads the minimum
  // bucket. 128-bit intermediate: count * q must not overflow.
  using u128 = unsigned __int128;
  std::uint64_t rank = static_cast<std::uint64_t>(
      (static_cast<u128>(count) * q + 999) / 1000);
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return hist_bucket_max(static_cast<int>(b));
  }
  // Trimmed invariant: the last bucket is nonzero, so we cannot get here
  // with a rank <= count; defensive fallback for hand-built vectors.
  return buckets.empty()
             ? 0
             : hist_bucket_max(static_cast<int>(buckets.size()) - 1);
}

HistSummary summarize(const HistData& h) {
  return {h.quantile_permille(500), h.quantile_permille(900),
          h.quantile_permille(990)};
}

}  // namespace odcfp::metrics
