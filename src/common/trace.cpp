#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/atomic_io.hpp"
#include "common/log.hpp"

namespace odcfp::trace {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDefaultLimit = std::size_t{1} << 18;  // 256Ki

enum class Phase : std::uint8_t { kBegin, kEnd, kCounter, kInstant };

/// One recorded event. POD so buffer slots can be rewritten across
/// start() epochs without destructor ceremony; both pointers must have
/// static storage duration (span-name / fault-site literals).
struct Event {
  const char* name = nullptr;
  const char* detail = nullptr;
  std::uint64_t ts_ns = 0;
  std::int64_t value = 0;
  Phase phase = Phase::kInstant;
};

/// Per-thread buffer. The owner thread is the only writer: it fills slot
/// `size_` then publishes with a release store, so a collector reading
/// size with acquire sees fully written events — the only cross-thread
/// protocol, making the hot path lock-free. Storage is preallocated to
/// `events.size()` and never reallocated while registered.
struct Sink {
  explicit Sink(std::size_t limit) : events(limit) {}

  std::vector<Event> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  char name[48] = {0};
  std::atomic<bool> has_name{false};
  std::uint64_t tid = 0;
};

struct Global {
  std::atomic<bool> enabled{false};
  /// Bumped on every start(); thread-local sink caches re-register when
  /// their cached epoch goes stale (handles stop()+start() cycles).
  std::atomic<std::uint64_t> epoch{0};
  std::mutex mu;  ///< Guards sinks / next_tid / limit / env bookkeeping.
  std::vector<std::shared_ptr<Sink>> sinks;
  std::uint64_t next_tid = 0;
  std::size_t limit = kDefaultLimit;
  Clock::time_point origin{};
  std::string env_path;  ///< Non-empty when armed by ODCFP_TRACE.
};

void env_flush();

/// Leaked on purpose: the ODCFP_TRACE atexit flush and thread-local sink
/// destructors may run during static destruction, after a non-leaked
/// instance would already be gone.
Global& g() {
  static Global* instance = [] {
    Global* G = new Global();
    const char* path = std::getenv("ODCFP_TRACE");
    if (path != nullptr && *path != '\0') {
      G->env_path = path;
      if (const char* lim = std::getenv("ODCFP_TRACE_LIMIT")) {
        const long long v = std::atoll(lim);
        if (v > 0) G->limit = static_cast<std::size_t>(v);
      }
      G->origin = Clock::now();
      G->epoch.store(1, std::memory_order_release);
      G->enabled.store(true, std::memory_order_release);
      std::atexit(env_flush);
    }
    return G;
  }();
  return *instance;
}

/// Sticky per-thread track name, independent of any live trace so pool
/// workers can name themselves once at spawn, before tracing starts.
char* pending_name() {
  thread_local char name[48] = {0};
  return name;
}

struct TlsRef {
  std::shared_ptr<Sink> sink;
  std::uint64_t epoch = 0;
};

Sink& tls_sink() {
  thread_local TlsRef ref;
  Global& G = g();
  const std::uint64_t e = G.epoch.load(std::memory_order_acquire);
  if (ref.epoch != e || ref.sink == nullptr) {
    std::lock_guard<std::mutex> lock(G.mu);
    auto sink = std::make_shared<Sink>(G.limit);
    sink->tid = G.next_tid++;
    if (pending_name()[0] != '\0') {
      std::strncpy(sink->name, pending_name(), sizeof(sink->name) - 1);
      sink->has_name.store(true, std::memory_order_release);
    }
    G.sinks.push_back(sink);
    ref.sink = std::move(sink);
    ref.epoch = e;
  }
  return *ref.sink;
}

void emit(Phase phase, const char* name, const char* detail,
          std::int64_t value) {
  Global& G = g();
  if (!G.enabled.load(std::memory_order_relaxed)) return;
  Sink& s = tls_sink();
  const std::size_t i = s.size.load(std::memory_order_relaxed);
  if (i >= s.events.size()) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& ev = s.events[i];
  ev.name = name;
  ev.detail = detail;
  ev.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           G.origin)
          .count());
  ev.value = value;
  ev.phase = phase;
  s.size.store(i + 1, std::memory_order_release);
}

void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome's ts unit is microseconds; print ns-resolution fractions.
void write_ts(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

void env_flush() {
  Global& G = g();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(G.mu);
    path.swap(G.env_path);
  }
  if (!path.empty()) write_file(path);
}

}  // namespace

bool enabled() {
  return g().enabled.load(std::memory_order_relaxed);
}

void start(std::size_t per_thread_limit) {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  if (G.enabled.load(std::memory_order_relaxed)) return;
  if (per_thread_limit > 0) {
    G.limit = per_thread_limit;
  } else if (const char* lim = std::getenv("ODCFP_TRACE_LIMIT")) {
    const long long v = std::atoll(lim);
    if (v > 0) G.limit = static_cast<std::size_t>(v);
  }
  G.sinks.clear();
  G.next_tid = 0;
  G.origin = Clock::now();
  G.epoch.fetch_add(1, std::memory_order_release);
  G.enabled.store(true, std::memory_order_release);
}

void stop() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.enabled.store(false, std::memory_order_release);
  G.sinks.clear();
  G.next_tid = 0;
}

std::uint64_t dropped_events() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  std::uint64_t total = 0;
  for (const auto& s : G.sinks) {
    total += s->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t recorded_events() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  std::uint64_t total = 0;
  for (const auto& s : G.sinks) {
    total += s->size.load(std::memory_order_acquire);
  }
  return total;
}

void set_thread_name(const char* name) {
  std::strncpy(pending_name(), name, 47);
  pending_name()[47] = '\0';
  if (enabled()) {
    Sink& s = tls_sink();
    std::strncpy(s.name, pending_name(), sizeof(s.name) - 1);
    s.has_name.store(true, std::memory_order_release);
  }
}

void begin(const char* name) { emit(Phase::kBegin, name, nullptr, 0); }
void end(const char* name) { emit(Phase::kEnd, name, nullptr, 0); }
void counter(const char* name, std::int64_t value) {
  emit(Phase::kCounter, name, nullptr, value);
}
void instant(const char* name, const char* detail) {
  emit(Phase::kInstant, name, detail, 0);
}

void write(std::ostream& os) {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  // Sinks register in first-event order, so the vector is already sorted
  // by tid; one pass emits name metadata then each track's events.
  std::uint64_t dropped = 0;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"odcfp\"}}";
  for (const auto& sink : G.sinks) {
    const std::uint64_t tid = sink->tid;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":";
    if (sink->has_name.load(std::memory_order_acquire)) {
      write_escaped(os, sink->name);
    } else {
      char fallback[32];
      std::snprintf(fallback, sizeof(fallback), "thread-%llu",
                    static_cast<unsigned long long>(tid));
      write_escaped(os, fallback);
    }
    os << "}}";
    const std::size_t n = sink->size.load(std::memory_order_acquire);
    dropped += sink->dropped.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      const Event& ev = sink->events[i];
      os << ",\n{\"name\":";
      write_escaped(os, ev.name);
      os << ",\"ph\":\"";
      switch (ev.phase) {
        case Phase::kBegin: os << 'B'; break;
        case Phase::kEnd: os << 'E'; break;
        case Phase::kCounter: os << 'C'; break;
        case Phase::kInstant: os << 'i'; break;
      }
      os << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
      write_ts(os, ev.ts_ns);
      if (ev.phase == Phase::kCounter) {
        os << ",\"args\":{\"value\":" << ev.value << "}";
      } else if (ev.phase == Phase::kInstant) {
        os << ",\"s\":\"t\"";
        if (ev.detail != nullptr) {
          os << ",\"args\":{\"detail\":";
          write_escaped(os, ev.detail);
          os << "}";
        }
      }
      os << "}";
    }
  }
  char dropped_str[24];
  std::snprintf(dropped_str, sizeof(dropped_str), "%llu",
                static_cast<unsigned long long>(dropped));
  char limit_str[24];
  std::snprintf(limit_str, sizeof(limit_str), "%llu",
                static_cast<unsigned long long>(G.limit));
  os << "\n],\"otherData\":{\"trace_dropped_events\":\"" << dropped_str
     << "\",\"trace_event_limit_per_thread\":\"" << limit_str << "\"}}\n";
}

bool write_file(const std::string& path) {
  // Render to memory, publish atomically: a timeline consumer (or an
  // artifact-uploading CI step racing an exit flush) never sees a
  // half-written JSON file at the final path.
  std::ostringstream os;
  write(os);
  const atomic_io::WriteResult written =
      atomic_io::write_file_atomic(path, os.str());
  if (!written.ok) {
    log::error("trace.write_failed")
        .field("path", path)
        .field("error", written.error);
    return false;
  }
  log::info("trace.written")
      .field("path", path)
      .field("events", static_cast<std::int64_t>(recorded_events()))
      .field("dropped", static_cast<std::int64_t>(dropped_events()));
  return true;
}

}  // namespace odcfp::trace
