#include "common/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/atomic_io.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"

namespace odcfp::trace {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDefaultLimit = std::size_t{1} << 18;  // 256Ki

enum class Phase : std::uint8_t { kBegin, kEnd, kCounter, kInstant };

/// One recorded event. POD so buffer slots can be rewritten across
/// start() epochs without destructor ceremony; both pointers must have
/// static storage duration (span-name / fault-site literals).
struct Event {
  const char* name = nullptr;
  const char* detail = nullptr;
  std::uint64_t ts_ns = 0;
  std::int64_t value = 0;
  Phase phase = Phase::kInstant;
};

/// Per-thread buffer. The owner thread is the only writer: it fills slot
/// `size_` then publishes with a release store, so a collector reading
/// size with acquire sees fully written events — the only cross-thread
/// protocol, making the hot path lock-free. Storage is preallocated to
/// `events.size()` and never reallocated while registered.
struct Sink {
  explicit Sink(std::size_t limit) : events(limit) {}

  std::vector<Event> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  char name[48] = {0};
  std::atomic<bool> has_name{false};
  std::uint64_t tid = 0;
};

struct Global {
  std::atomic<bool> enabled{false};
  /// Bumped on every start(); thread-local sink caches re-register when
  /// their cached epoch goes stale (handles stop()+start() cycles).
  std::atomic<std::uint64_t> epoch{0};
  std::mutex mu;  ///< Guards sinks / next_tid / limit / arm bookkeeping.
  std::vector<std::shared_ptr<Sink>> sinks;
  std::uint64_t next_tid = 0;
  std::size_t limit = kDefaultLimit;
  Clock::time_point origin{};
  /// The origin on the anchor's steady epoch — pairs every event's
  /// relative ts_ns with the process clock anchor in otherData.
  std::uint64_t origin_steady_ns = 0;
  std::string armed_path;  ///< Flush destination; empty = disarmed.
  bool atexit_registered = false;
  std::atomic<std::uint64_t> flushes{0};
  char label[48] = "odcfp";  ///< process_name metadata.
  std::map<std::string, std::string> meta;  ///< Extra otherData entries.
};

void exit_flush();

/// Leaked on purpose: the armed-path atexit flush and thread-local sink
/// destructors may run during static destruction, after a non-leaked
/// instance would already be gone.
Global& g() {
  static Global* instance = [] {
    Global* G = new Global();
    const char* path = std::getenv("ODCFP_TRACE");
    if (path != nullptr && *path != '\0') {
      G->armed_path = path;
      if (const char* lim = std::getenv("ODCFP_TRACE_LIMIT")) {
        const long long v = std::atoll(lim);
        if (v > 0) G->limit = static_cast<std::size_t>(v);
      }
      G->origin = Clock::now();
      G->origin_steady_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              G->origin.time_since_epoch())
              .count());
      G->epoch.store(1, std::memory_order_release);
      G->enabled.store(true, std::memory_order_release);
      G->atexit_registered = true;
      std::atexit(exit_flush);
    }
    return G;
  }();
  return *instance;
}

/// Sticky per-thread track name, independent of any live trace so pool
/// workers can name themselves once at spawn, before tracing starts.
char* pending_name() {
  thread_local char name[48] = {0};
  return name;
}

struct TlsRef {
  std::shared_ptr<Sink> sink;
  std::uint64_t epoch = 0;
};

Sink& tls_sink() {
  thread_local TlsRef ref;
  Global& G = g();
  const std::uint64_t e = G.epoch.load(std::memory_order_acquire);
  if (ref.epoch != e || ref.sink == nullptr) {
    std::lock_guard<std::mutex> lock(G.mu);
    auto sink = std::make_shared<Sink>(G.limit);
    sink->tid = G.next_tid++;
    if (pending_name()[0] != '\0') {
      std::strncpy(sink->name, pending_name(), sizeof(sink->name) - 1);
      sink->has_name.store(true, std::memory_order_release);
    }
    G.sinks.push_back(sink);
    ref.sink = std::move(sink);
    ref.epoch = e;
  }
  return *ref.sink;
}

void emit(Phase phase, const char* name, const char* detail,
          std::int64_t value) {
  Global& G = g();
  if (!G.enabled.load(std::memory_order_relaxed)) return;
  Sink& s = tls_sink();
  const std::size_t i = s.size.load(std::memory_order_relaxed);
  if (i >= s.events.size()) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& ev = s.events[i];
  ev.name = name;
  ev.detail = detail;
  ev.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           G.origin)
          .count());
  ev.value = value;
  ev.phase = phase;
  s.size.store(i + 1, std::memory_order_release);
}

void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_escaped(std::ostream& os, const std::string& s) {
  write_escaped(os, s.c_str());
}

/// Chrome's ts unit is microseconds; print ns-resolution fractions.
void write_ts(std::ostream& os, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

bool reserved_meta_key(const std::string& key) {
  return key.rfind("trace_", 0) == 0 || key.rfind("clock_", 0) == 0;
}

/// Renders and atomically publishes the armed file. `quiet` suppresses
/// the per-write info record — heartbeat-cadence flushes would otherwise
/// dominate the structured log.
bool write_path(const std::string& path, bool quiet) {
  // Render to memory, publish atomically: a timeline consumer (or an
  // artifact-uploading CI step racing an exit flush) never sees a
  // half-written JSON file at the final path.
  std::ostringstream os;
  write(os);
  const atomic_io::WriteResult written =
      atomic_io::write_file_atomic(path, os.str());
  if (!written.ok) {
    log::error("trace.write_failed")
        .field("path", path)
        .field("error", written.error);
    return false;
  }
  if (!quiet) {
    log::info("trace.written")
        .field("path", path)
        .field("events", static_cast<std::int64_t>(recorded_events()))
        .field("dropped", static_cast<std::int64_t>(dropped_events()));
  }
  return true;
}

void exit_flush() {
  Global& G = g();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(G.mu);
    path.swap(G.armed_path);  // one shot; later flush() calls are no-ops
  }
  if (path.empty()) return;
  G.flushes.fetch_add(1, std::memory_order_relaxed);
  write_path(path, /*quiet=*/false);
}

}  // namespace

bool enabled() {
  return g().enabled.load(std::memory_order_relaxed);
}

void start(std::size_t per_thread_limit) {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  if (G.enabled.load(std::memory_order_relaxed)) return;
  if (per_thread_limit > 0) {
    G.limit = per_thread_limit;
  } else if (const char* lim = std::getenv("ODCFP_TRACE_LIMIT")) {
    const long long v = std::atoll(lim);
    if (v > 0) G.limit = static_cast<std::size_t>(v);
  }
  G.sinks.clear();
  G.next_tid = 0;
  G.origin = Clock::now();
  G.origin_steady_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          G.origin.time_since_epoch())
          .count());
  G.flushes.store(0, std::memory_order_relaxed);
  std::strcpy(G.label, "odcfp");
  G.meta.clear();
  G.epoch.fetch_add(1, std::memory_order_release);
  G.enabled.store(true, std::memory_order_release);
}

void stop() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.enabled.store(false, std::memory_order_release);
  G.sinks.clear();
  G.next_tid = 0;
}

std::uint64_t dropped_events() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  std::uint64_t total = 0;
  for (const auto& s : G.sinks) {
    total += s->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t recorded_events() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  std::uint64_t total = 0;
  for (const auto& s : G.sinks) {
    total += s->size.load(std::memory_order_acquire);
  }
  return total;
}

void set_thread_name(const char* name) {
  std::strncpy(pending_name(), name, 47);
  pending_name()[47] = '\0';
  if (enabled()) {
    Sink& s = tls_sink();
    std::strncpy(s.name, pending_name(), sizeof(s.name) - 1);
    s.has_name.store(true, std::memory_order_release);
  }
}

void set_process_label(const char* label) {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  std::strncpy(G.label, label, sizeof(G.label) - 1);
  G.label[sizeof(G.label) - 1] = '\0';
}

void set_meta(const std::string& key, const std::string& value) {
  if (key.empty() || reserved_meta_key(key)) return;
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.meta[key] = value;
}

void arm_file(const std::string& path) {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.armed_path = path;
  if (!G.atexit_registered) {
    G.atexit_registered = true;
    std::atexit(exit_flush);
  }
}

void disarm() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.armed_path.clear();
}

bool armed() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  return !G.armed_path.empty();
}

bool flush() {
  Global& G = g();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(G.mu);
    path = G.armed_path;
  }
  if (path.empty()) return false;
  // Count first so the file being written already reports this flush —
  // a reader of a crash-survived file sees how many rewrites it is into
  // the run, i.e. how stale its tail can be (one heartbeat interval).
  G.flushes.fetch_add(1, std::memory_order_relaxed);
  return write_path(path, /*quiet=*/true);
}

std::uint64_t flush_count() {
  return g().flushes.load(std::memory_order_relaxed);
}

void begin(const char* name) { emit(Phase::kBegin, name, nullptr, 0); }
void end(const char* name) { emit(Phase::kEnd, name, nullptr, 0); }
void counter(const char* name, std::int64_t value) {
  emit(Phase::kCounter, name, nullptr, value);
}
void instant(const char* name, const char* detail) {
  emit(Phase::kInstant, name, detail, 0);
}

void write(std::ostream& os) {
  Global& G = g();
  // Pair the trace's steady-clock origin with the process anchor before
  // taking the trace mutex (process_anchor() is itself lazily sampled).
  const std::uint64_t origin_wall =
      clocks::wall_from_steady(G.origin_steady_ns);
  const clocks::ClockAnchor& anchor = clocks::process_anchor();
  std::lock_guard<std::mutex> lock(G.mu);
  // Sinks register in first-event order, so the vector is already sorted
  // by tid; one pass emits name metadata then each track's events.
  std::uint64_t dropped = 0;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":";
  write_escaped(os, G.label);
  os << "}}";
  for (const auto& sink : G.sinks) {
    const std::uint64_t tid = sink->tid;
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":";
    if (sink->has_name.load(std::memory_order_acquire)) {
      write_escaped(os, sink->name);
    } else {
      char fallback[32];
      std::snprintf(fallback, sizeof(fallback), "thread-%llu",
                    static_cast<unsigned long long>(tid));
      write_escaped(os, fallback);
    }
    os << "}}";
    const std::size_t n = sink->size.load(std::memory_order_acquire);
    dropped += sink->dropped.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      const Event& ev = sink->events[i];
      os << ",\n{\"name\":";
      write_escaped(os, ev.name);
      os << ",\"ph\":\"";
      switch (ev.phase) {
        case Phase::kBegin: os << 'B'; break;
        case Phase::kEnd: os << 'E'; break;
        case Phase::kCounter: os << 'C'; break;
        case Phase::kInstant: os << 'i'; break;
      }
      os << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
      write_ts(os, ev.ts_ns);
      if (ev.phase == Phase::kCounter) {
        os << ",\"args\":{\"value\":" << ev.value << "}";
      } else if (ev.phase == Phase::kInstant) {
        os << ",\"s\":\"t\"";
        if (ev.detail != nullptr) {
          os << ",\"args\":{\"detail\":";
          write_escaped(os, ev.detail);
          os << "}";
        }
      }
      os << "}";
    }
  }
  // otherData: one sorted map so the rendering is deterministic and
  // user meta can never split the fixed keys. All values are strings —
  // u64 would lose precision as a JSON double in lenient parsers.
  std::map<std::string, std::string> other = G.meta;
  other["clock_anchor_steady_ns"] = std::to_string(anchor.steady_ns);
  other["clock_anchor_wall_ns"] = std::to_string(anchor.wall_ns);
  other["trace_origin_steady_ns"] = std::to_string(G.origin_steady_ns);
  other["trace_origin_wall_ns"] = std::to_string(origin_wall);
  other["trace_dropped_events"] = std::to_string(dropped);
  other["trace_event_limit_per_thread"] = std::to_string(G.limit);
  other["trace_flushes"] =
      std::to_string(G.flushes.load(std::memory_order_relaxed));
  os << "\n],\"otherData\":{";
  bool first = true;
  for (const auto& [key, value] : other) {
    if (!first) os << ',';
    first = false;
    write_escaped(os, key);
    os << ':';
    write_escaped(os, value);
  }
  os << "}}\n";
}

bool write_file(const std::string& path) {
  return write_path(path, /*quiet=*/false);
}

}  // namespace odcfp::trace
