// Process-wide clock anchoring for cross-process timeline stitching.
//
// Every odcfp process keeps one immutable calibration anchor: a
// (wall_clock, steady_clock) pair sampled back-to-back at first use.
// Event timestamps are recorded on the steady clock (monotonic, cheap,
// immune to NTP steps), and the anchor is written into every durable
// artifact that needs cross-process alignment — trace-file metadata
// (src/common/trace.*), the startup `clock_anchor` log record
// (src/common/log.*), and the wall= field stamped on lease/journal/
// status records (src/dist/*). A stitcher that later merges artifacts
// from N processes computes inter-process offsets purely from those
// recorded anchors; it never consults a clock of its own, which is what
// makes the stitched output a deterministic function of the inputs
// (see src/dist/stitch.*).
//
// Error model: the anchor is sampled once with the steady clock read on
// both sides of the wall read and midpointed, so the pairing error is
// bounded by half the sampling window (sub-microsecond in practice).
// Cross-process skew on one host is then bounded by wall-clock steps
// between process launches; the stitcher surfaces each shard's offset so
// out-of-bound anchors are visible rather than silently misaligned.
#pragma once

#include <cstdint>

namespace odcfp::clocks {

/// One calibration pair: the same instant read on both clocks.
struct ClockAnchor {
  std::uint64_t wall_ns = 0;    ///< CLOCK_REALTIME ns since Unix epoch.
  std::uint64_t steady_ns = 0;  ///< steady_clock ns since its (arbitrary)
                                ///< epoch, midpoint of the sample window.
};

/// This process's anchor, sampled on first call and immutable after.
const ClockAnchor& process_anchor();

/// Steady-clock now, in the same epoch as ClockAnchor::steady_ns.
std::uint64_t steady_now_ns();

/// Converts a steady timestamp (this process's epoch) to anchored wall
/// time: anchor.wall_ns + (steady_ns - anchor.steady_ns).
std::uint64_t wall_from_steady(std::uint64_t steady_ns);

/// Anchored wall-clock now: monotonic within the process (it advances on
/// the steady clock), comparable across processes via the anchors.
std::uint64_t anchored_wall_now_ns();

}  // namespace odcfp::clocks
