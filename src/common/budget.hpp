// Cross-cutting resource budgets and the graceful-degradation taxonomy.
//
// Every potentially unbounded computation in the pipeline — SAT CEC,
// BDD-based window don't-care analysis, the O(sites^2) reactive reduction
// heuristic — accepts a Budget and answers within it: on exhaustion the
// layer returns its best sound fallback (simulation evidence instead of a
// SAT proof, the local Eq. 1 ODC instead of the window BDD, the best
// feasible code found so far) tagged with Status::kExhausted, instead of
// running to completion or being killed from outside.
//
// A Budget combines three independent caps, any subset of which may be
// active:
//   * a wall-clock deadline (steady_clock; reads are amortized so that
//     exhausted() is cheap enough for inner loops);
//   * a step quota, charged cooperatively by the running algorithm
//     (charge() / exhausted());
//   * a cooperative cancellation token shared with the caller, so a
//     serving layer can abandon a request from another thread.
// A conflict quota for the SAT solver rides along as plain data (the
// solver already counts conflicts itself).
//
// Budgets are intentionally non-copyable: one Budget describes one
// request, and all layers working on that request share it by reference
// (options structs hold a `const Budget*`, nullptr meaning unlimited).
// The mutable state (spent steps, clock-check phase) is atomic so a const
// reference can be threaded through const-taking analysis code.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/telemetry.hpp"
#include "common/trace.hpp"

namespace odcfp {

/// How a budgeted computation ended.
enum class Status : std::uint8_t {
  kOk = 0,          ///< Completed within budget; result is exact/optimal.
  kExhausted,       ///< Budget died; result (if any) is a sound fallback.
  kInfeasible,      ///< No answer exists under the given constraints.
  kMalformedInput,  ///< Input violated the API contract; nothing was done.
};

const char* to_string(Status status);

/// Shared cooperative cancellation flag. Copies observe the same flag, so
/// a caller can hand the token down a pipeline and cancel all stages at
/// once from another thread.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Budget {
 public:
  /// Default-constructed budgets are unlimited on every axis.
  Budget() = default;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;
  /// Moving is allowed so the named factories below can return by value;
  /// once a Budget is shared down a pipeline it must stay put.
  Budget(Budget&& other) noexcept
      : deadline_(other.deadline_),
        has_deadline_(other.has_deadline_),
        has_steps_(other.has_steps_),
        has_cancel_(other.has_cancel_),
        conflicts_(other.conflicts_),
        cancel_(std::move(other.cancel_)),
        steps_left_(other.steps_left_.load(std::memory_order_relaxed)),
        clock_phase_(other.clock_phase_.load(std::memory_order_relaxed)),
        deadline_hit_(
            other.deadline_hit_.load(std::memory_order_relaxed)),
        died_in_(other.died_in_.load(std::memory_order_relaxed)) {}

  // ---- construction (chainable) ----

  static Budget deadline_ms(std::int64_t ms) {
    Budget b;
    b.with_deadline_ms(ms);
    return b;
  }
  static Budget steps(std::uint64_t n) {
    Budget b;
    b.with_steps(n);
    return b;
  }

  Budget& with_deadline_ms(std::int64_t ms) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms);
    has_deadline_ = true;
    return *this;
  }
  Budget& with_steps(std::uint64_t n) {
    steps_left_.store(static_cast<std::int64_t>(n),
                      std::memory_order_relaxed);
    has_steps_ = true;
    return *this;
  }
  /// Conflict quota consumed by sat::Solver::solve (< 0 = unlimited).
  Budget& with_conflicts(std::int64_t n) {
    conflicts_ = n;
    return *this;
  }
  Budget& with_cancel(CancelToken token) {
    cancel_ = std::move(token);
    has_cancel_ = true;
    return *this;
  }

  // ---- cooperative checks ----

  /// True once any axis of the budget is spent. Reads the wall clock only
  /// every kClockPeriod calls; callers place this in inner loops.
  bool exhausted() const {
    if (has_cancel_ && cancel_.cancelled()) {
      note_death();
      return true;
    }
    if (has_steps_ &&
        steps_left_.load(std::memory_order_relaxed) <= 0) {
      note_death();
      return true;
    }
    if (!has_deadline_) return false;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if (clock_phase_.fetch_add(1, std::memory_order_relaxed) %
            kClockPeriod != 0) {
      return false;
    }
    return expired_now();
  }

  /// Charges `n` steps and reports whether the budget still stands. Also
  /// performs the exhausted() deadline/cancel check.
  bool charge(std::uint64_t n = 1) const {
    if (has_steps_) {
      steps_left_.fetch_sub(static_cast<std::int64_t>(n),
                            std::memory_order_relaxed);
    }
    return !exhausted();
  }

  /// Unamortized deadline check (one clock read).
  bool expired_now() const {
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      note_death();
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }
  bool has_step_quota() const { return has_steps_; }
  std::int64_t steps_left() const {
    return steps_left_.load(std::memory_order_relaxed);
  }
  std::int64_t conflicts() const { return conflicts_; }

  /// Seconds until the deadline (negative once past; a large positive
  /// constant when no deadline is set).
  double remaining_seconds() const;

  /// Name of the telemetry span that was innermost on the thread that
  /// first observed this budget exhausted — "which phase starved the
  /// request". nullptr while the budget stands; "" when it died outside
  /// any span or with telemetry disabled.
  const char* died_in() const {
    return died_in_.load(std::memory_order_relaxed);
  }

 private:
  /// First-observation-wins attribution of where the budget died. The
  /// exhausted-true paths are terminal for the calling algorithm, so
  /// this runs a handful of times per request, not per check.
  void note_death() const {
    const char* expected = nullptr;
    if (died_in_.load(std::memory_order_relaxed) != nullptr) return;
    const char* span = telemetry::current_span_name();
    if (died_in_.compare_exchange_strong(expected,
                                         span != nullptr ? span : "",
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
      // The CAS winner marks the moment of death on the trace timeline;
      // args.detail names the span, matching Outcome::exhausted_at().
      trace::instant("budget.exhausted", span);
    }
  }

  static constexpr std::uint64_t kClockPeriod = 64;

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool has_steps_ = false;
  bool has_cancel_ = false;
  std::int64_t conflicts_ = -1;
  CancelToken cancel_;
  mutable std::atomic<std::int64_t> steps_left_{-1};
  mutable std::atomic<std::uint64_t> clock_phase_{0};
  mutable std::atomic<bool> deadline_hit_{false};
  mutable std::atomic<const char*> died_in_{nullptr};
};

/// Convenience for the `const Budget*` convention in options structs.
inline bool budget_exhausted(const Budget* b) {
  return b != nullptr && b->exhausted();
}
inline bool budget_charge(const Budget* b, std::uint64_t n = 1) {
  return b == nullptr || b->charge(n);
}

/// Result-or-degradation wrapper. Invariants:
///  * kOk             => has_value(), confidence == 1
///  * kExhausted      => may carry a degraded value (anytime algorithms)
///                       with confidence in [0, 1]
///  * kInfeasible / kMalformedInput => no value, message explains why.
template <typename T>
class Outcome {
 public:
  static Outcome success(T value) {
    Outcome o;
    o.status_ = Status::kOk;
    o.value_ = std::move(value);
    o.confidence_ = 1.0;
    return o;
  }
  /// A sound-but-degraded result produced after budget exhaustion.
  static Outcome exhausted(T value, std::string message,
                           double confidence) {
    Outcome o;
    o.status_ = Status::kExhausted;
    o.value_ = std::move(value);
    o.message_ = std::move(message);
    o.confidence_ = confidence;
    o.exhausted_at_ = telemetry::current_span_name();
    return o;
  }
  /// Budget died before any usable result existed.
  static Outcome exhausted(std::string message) {
    Outcome o;
    o.status_ = Status::kExhausted;
    o.message_ = std::move(message);
    o.confidence_ = 0.0;
    o.exhausted_at_ = telemetry::current_span_name();
    return o;
  }
  static Outcome infeasible(std::string message) {
    Outcome o;
    o.status_ = Status::kInfeasible;
    o.message_ = std::move(message);
    return o;
  }
  static Outcome malformed(std::string message) {
    Outcome o;
    o.status_ = Status::kMalformedInput;
    o.message_ = std::move(message);
    return o;
  }

  Status status() const { return status_; }
  bool ok() const { return status_ == Status::kOk; }
  bool has_value() const { return value_.has_value(); }
  /// For kExhausted: the telemetry span where the budget died — taken
  /// from Budget::died_in() when the producing layer threaded it through
  /// (see with_exhausted_at), else the span that built this Outcome.
  /// "" when unattributed (no span open, or telemetry disabled).
  const char* exhausted_at() const {
    return exhausted_at_ != nullptr ? exhausted_at_ : "";
  }
  /// Overrides the exhaustion site with the budget's own attribution
  /// (the span where exhaustion was first *observed*, which can be
  /// deeper than where the Outcome is assembled). nullptr is ignored.
  Outcome&& with_exhausted_at(const char* span) && {
    if (span != nullptr) exhausted_at_ = span;
    return std::move(*this);
  }
  /// Confidence in the carried value: 1 for exact results, the fallback's
  /// evidence score for degraded ones, 0 when there is no value.
  double confidence() const { return confidence_; }
  const std::string& message() const { return message_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  Status status_ = Status::kOk;
  std::optional<T> value_;
  std::string message_;
  double confidence_ = 0.0;
  const char* exhausted_at_ = nullptr;  ///< Static-storage span literal.
};

}  // namespace odcfp
