// Deterministic exponential-backoff retry for transient failures.
//
// The crash-safety layer classifies failures into two kinds: permanent
// (malformed input, infeasible constraints, logic bugs — retrying cannot
// help) and transient (allocation failure under memory pressure, a
// per-buyer sub-budget that ran out of steps, an injected or real I/O
// fault on an artifact write). retry_with_backoff re-runs an operation
// across transient failures with exponentially growing, jitter-spread
// delays, and gives up cleanly — Status::kExhausted, never an unbounded
// loop — when attempts or the shared Budget run out.
//
// Determinism contract: the backoff sequence is a pure function of
// (policy.seed, attempt index) — backoff_delay_ms() — never of the wall
// clock, the thread, or scheduling order, so a retried batch produces
// identical attempt counts, backoff sequences, and telemetry counters at
// any thread count (the retry_test TSan suite proves it). Jitter is
// drawn from common/rng's splitmix-seeded xoshiro stream, the same
// machinery every other reproducible randomness in the library uses.
//
// Transient classification:
//  * the operation returns Status::kExhausted  -> transient (sub-budget)
//  * the operation throws std::bad_alloc       -> transient
//  * the operation throws fault::InjectedIoError -> transient
//  * Status::kInfeasible / kMalformedInput     -> permanent, returned
//  * any other exception                       -> permanent, propagates
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/budget.hpp"

namespace odcfp {

struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 4;
  double base_delay_ms = 1.0;
  double multiplier = 2.0;
  double max_delay_ms = 1000.0;
  /// Fraction of each nominal delay that is randomized:
  /// delay = nominal * (1 - jitter + jitter * u), u ~ U[0,1) seeded by
  /// (seed, attempt). 0 disables jitter entirely.
  double jitter = 0.5;
  /// Seed of the jitter stream. Callers with per-item work derive this
  /// from the item's seed so fleets of retries stay decorrelated AND
  /// reproducible.
  std::uint64_t seed = 0;
  /// Deadline/cancellation source. A retry whose backoff would sleep
  /// past the deadline is not attempted: the call gives up with
  /// kExhausted immediately instead of burning the caller's budget
  /// asleep. Backoff sleeps are sliced and re-check the budget between
  /// slices, so a *concurrent* cancel or deadline expiry wakes the loop
  /// within milliseconds and gives up — never sleeping out the rest of
  /// the backoff, never running another attempt.
  const Budget* budget = nullptr;
  /// When false the backoff is computed and recorded but not slept —
  /// determinism tests replay schedules without wall-clock coupling.
  bool sleep = true;
};

struct RetryStats {
  /// kOk: an attempt succeeded. kExhausted: transient failures outlasted
  /// max_attempts or the budget. kInfeasible/kMalformedInput: the
  /// operation reported a permanent failure (passed through).
  Status status = Status::kOk;
  int attempts = 0;
  /// One entry per backoff actually scheduled (attempts - 1 on a run
  /// that eventually succeeded, up to max_attempts - 1). Deterministic:
  /// equals backoff_delay_ms(policy, i + 1) element-wise.
  std::vector<double> backoff_ms;
  /// Description of the last transient failure ("" when none).
  std::string last_error;
};

/// The nominal-with-jitter delay scheduled before retry number `attempt`
/// (1-based: the delay after the first failed attempt is attempt == 1).
/// Pure function of (policy.seed, attempt).
double backoff_delay_ms(const RetryPolicy& policy, int attempt);

/// Runs `attempt` (argument: 1-based attempt number) until it succeeds,
/// fails permanently, or the policy gives up. `what` labels telemetry
/// counters, log records, and trace instants; it must be a literal.
RetryStats retry_with_backoff(const char* what, const RetryPolicy& policy,
                              const std::function<Status(int)>& attempt);

}  // namespace odcfp
