#include "common/rng.hpp"

#include "common/check.hpp"

namespace odcfp {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ODCFP_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  ODCFP_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::size_t Rng::pick_weighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    ODCFP_CHECK(w >= 0);
    total += w;
  }
  ODCFP_CHECK(total > 0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace odcfp
