#include "common/atomic_io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <exception>
#include <fstream>
#include <sstream>

#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/subprocess.hpp"

namespace odcfp::atomic_io {

namespace {

std::string errno_message(const char* step, const std::string& path) {
  std::string msg = step;
  msg += " '" + path + "': ";
  msg += std::strerror(errno);
  return msg;
}

std::string parent_dir(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

/// Distinct temp names per (process, call): concurrent writers to the
/// same final path from different threads never collide on the temp.
std::string temp_path_for(const std::string& path) {
  static std::atomic<std::uint64_t> seq{0};
  std::ostringstream os;
  os << path << ".tmp." << ::getpid() << "."
     << seq.fetch_add(1, std::memory_order_relaxed);
  return os.str();
}

/// Best-effort directory fsync: makes the rename itself durable.
void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

constexpr std::size_t kWriteChunk = 64 * 1024;

}  // namespace

WriteResult write_file_atomic(const std::string& path,
                              std::string_view data,
                              const WriteOptions& options) {
  WriteResult result;
  const std::string tmp = temp_path_for(path);
  int fd = -1;
  try {
    ODCFP_FAULT_POINT("atomic_io.open");
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                0644);
    if (fd < 0) {
      result.error = errno_message("open", tmp);
      return result;
    }
    std::size_t off = 0;
    while (off < data.size()) {
      // One fault point per chunk: an injected fault mid-loop leaves a
      // genuinely partial temp file, which must never become visible.
      try {
        ODCFP_FAULT_POINT("atomic_io.write");
      } catch (const fault::InjectedDiskFull& e) {
        // Simulated ENOSPC: the kernel accepted a short prefix of this
        // chunk before the device filled. Land those bytes for real so
        // the temp file is genuinely truncated, then fail the publish —
        // the unlink below must keep the final path untouched.
        const std::size_t short_n =
            std::min(e.short_bytes, data.size() - off);
        if (short_n > 0) (void)::write(fd, data.data() + off, short_n);
        result.error = std::string("short write (disk full) on '") + tmp +
                       "': " + e.what();
        break;
      }
      const std::size_t chunk = std::min(data.size() - off, kWriteChunk);
      const ssize_t n = ::write(fd, data.data() + off, chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        result.error = errno_message("write", tmp);
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (result.error.empty() && options.fsync_file) {
      ODCFP_FAULT_POINT("atomic_io.fsync");
      if (::fsync(fd) != 0) result.error = errno_message("fsync", tmp);
    }
    if (result.error.empty()) {
      if (::close(fd) != 0) result.error = errno_message("close", tmp);
      fd = -1;
    }
    if (result.error.empty()) {
      ODCFP_FAULT_POINT("atomic_io.rename");
      if (::rename(tmp.c_str(), path.c_str()) != 0) {
        result.error = errno_message("rename", tmp + " -> " + path);
      }
    }
  } catch (const std::exception& e) {
    // Injected faults (fault::InjectedIoError, std::bad_alloc from
    // FailNthAlloc) surface through the same error-return contract as
    // real I/O failures, so the retry layer sees one failure shape.
    result.error = std::string("injected fault on '") + tmp + "': " +
                   e.what();
  }
  if (!result.error.empty()) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    log::warn("atomic_io.write_failed")
        .field("path", path)
        .field("error", result.error);
    return result;
  }
  if (options.fsync_dir) fsync_directory(parent_dir(path));
  result.ok = true;
  return result;
}

namespace {

/// Extracts the `<pid>` of a `<path>.tmp.<pid>.<seq>` temp name.
/// Returns -1 when the name does not carry a parseable pid.
long temp_owner_pid(const std::string& name, std::size_t marker) {
  std::size_t i = marker + 5;  // past ".tmp."
  long pid = 0;
  std::size_t digits = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    pid = pid * 10 + (name[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || i >= name.size() || name[i] != '.') return -1;
  return pid;
}

}  // namespace

std::size_t remove_stale_temps(const std::string& dir,
                               long max_live_age_seconds) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::size_t removed = 0;
  const std::time_t now = std::time(nullptr);
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const std::size_t marker = name.find(".tmp.");
    if (marker == std::string::npos) continue;
    const std::string path = dir + "/" + name;
    const long pid = temp_owner_pid(name, marker);
    if (pid > 0 && proc::alive(static_cast<pid_t>(pid))) {
      // A live process owns this temp: it is mid-publish, not debris —
      // unless the file is old enough that the pid must have been
      // recycled since the writer died.
      struct stat st;
      const bool young =
          ::stat(path.c_str(), &st) == 0 &&
          now - st.st_mtime <= max_live_age_seconds;
      if (young) {
        log::info("atomic_io.live_temp_skipped")
            .field("file", name)
            .field("owner_pid", pid);
        continue;
      }
    }
    if (::unlink(path.c_str()) == 0) {
      ++removed;
      log::info("atomic_io.stale_temp_removed").field("file", name);
    }
  }
  ::closedir(d);
  return removed;
}

bool make_dirs(const std::string& dir) {
  if (dir.empty() || dir == "." || dir == "/") return true;
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t next = dir.find('/', pos);
    prefix = dir.substr(0, next == std::string::npos ? dir.size() : next);
    pos = next == std::string::npos ? dir.size() + 1 : next + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  return true;
}

bool exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream os;
  os << is.rdbuf();
  if (is.bad()) return false;
  *out = os.str();
  return true;
}

namespace {

const std::array<std::uint32_t, 256>& crc32_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

void Crc32::update(std::string_view data) {
  const auto& table = crc32_table();
  for (const char ch : data) {
    state_ = table[(state_ ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
             (state_ >> 8);
  }
}

}  // namespace odcfp::atomic_io
