// Deterministic, seedable random number generation.
//
// Everything in this library that involves randomness (benchmark circuit
// generation, random simulation patterns, fingerprint codeword assignment,
// heuristic restarts) goes through Rng so that every experiment is exactly
// reproducible from a seed.  The generator is xoshiro256**, seeded via
// splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

namespace odcfp {

/// xoshiro256** PRNG. Deterministic across platforms; not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  std::size_t pick_weighted(const std::vector<double>& weights);

 private:
  std::uint64_t s_[4];
};

}  // namespace odcfp
