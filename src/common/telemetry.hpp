// Process-wide telemetry: named counters, wall-clock timers, and
// hierarchical spans over the whole fingerprinting pipeline.
//
// The paper's claims are quantitative (location counts, Table II/III
// overheads, Fig. 7 curves), so every serving-layer question is "where
// did the time / budget go?". This module answers it with a registry of
// *span aggregates*: a span is an RAII scope named by a string literal
// (TELEM_SPAN("find_locations")); closing it adds one instance (count +
// elapsed wall time) to the aggregate node addressed by the names of the
// spans open on the current thread. Counters (TELEM_COUNT) attach to the
// innermost open span. The result is a tree keyed by span *path*, not a
// trace of individual events — which is what makes multi-threaded
// collection deterministic (see below).
//
// Threading / determinism contract:
//  * Every thread buffers into a private shadow tree (no locks on the
//    hot path). The shadow merges into the global registry when the
//    thread's outermost span closes (or at thread exit / flush_thread()).
//  * Merging sums counts and counters per path; it is commutative and
//    associative, so the merged structure, span counts, and counter
//    values are identical for any thread count and any scheduling — only
//    wall-clock durations vary run to run. The deterministic-merge tests
//    assert exactly this at 1/2/8 threads.
//  * ThreadPool work items run on worker threads whose span stack is
//    empty; AttachScope re-roots a worker's spans under the path captured
//    on the fan-out thread (telemetry::current_path()), so per-item spans
//    nest under the phase that issued them.
//  * Telemetry is an observer only: nothing in the pipeline reads it
//    back, so results are bit-identical with telemetry on or off.
//
// Overhead policy:
//  * Disabled (runtime toggle off, or ODCFP_TELEMETRY_ENABLED=0 at
//    compile time): two relaxed atomic loads per macro (the telemetry
//    toggle and the trace toggle — spans/counters double as trace-event
//    sources, see common/trace.hpp), zero allocation — enforced by a
//    test that counts operator new calls.
//  * Enabled: span open/close is a couple of small-map lookups in
//    thread-local memory; counters likewise. Nodes allocate once per
//    distinct path per thread. No locks except at merge points.
//
// Span names must be string literals (or otherwise outlive the process):
// the registry and the Budget death-attribution hook store the pointers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"

// Compile-time master switch: 0 compiles the macros down to nothing (the
// functions remain defined so direct calls still link).
#ifndef ODCFP_TELEMETRY_ENABLED
#define ODCFP_TELEMETRY_ENABLED 1
#endif

namespace odcfp::telemetry {

/// Aggregate of all closed span instances sharing one path, plus the
/// counters charged while a span of that path was innermost.
struct Node {
  std::uint64_t count = 0;     ///< Closed span instances.
  std::uint64_t total_ns = 0;  ///< Wall time summed over instances.
  /// Counter name -> accumulated value. std::map keeps export order
  /// deterministic (sorted by name, independent of creation order).
  std::map<std::string, std::int64_t> counters;
  /// Histogram name -> log2-bucket histogram (TELEM_HIST). Same merge
  /// and export discipline as counters; see common/metrics.hpp for the
  /// bucket scheme and determinism contract.
  std::map<std::string, metrics::HistData> hists;
  std::map<std::string, Node> children;

  bool operator==(const Node&) const = default;

  /// Child lookup by path, nullptr when absent.
  const Node* find(std::initializer_list<std::string_view> path) const;
  /// Counter value on this node (0 when absent).
  std::int64_t counter(std::string_view name) const;
  /// Histogram on this node, nullptr when absent.
  const metrics::HistData* hist(std::string_view name) const;
  /// Merge of every histogram named `name` anywhere in this subtree
  /// (histograms merge commutatively, so the result is path-free but
  /// still deterministic). Empty HistData when the name never occurs.
  metrics::HistData hist_total(std::string_view name) const;
};

/// Runtime toggle. Initialized from the ODCFP_TELEMETRY environment
/// variable ("0" disables; anything else, or unset, enables).
bool enabled();
void set_enabled(bool on);

/// RAII span. `name` must have static storage duration (use TELEM_SPAN,
/// which only accepts literals). Construction when telemetry is disabled
/// costs two atomic loads and allocates nothing. When event tracing is
/// active (common/trace.hpp) the span additionally emits a B/E duration
/// event pair — independently of the telemetry toggle, so a pure trace
/// run still gets a timeline.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  const char* trace_name_ = nullptr;  ///< Set when a B event was emitted.
};

/// Adds `n` to counter `name` on the innermost open span of this thread
/// (on the root when no span is open). `name` must be a literal.
void count(const char* name, std::int64_t n = 1);

/// Records one sample into histogram `name` on the innermost open span
/// of this thread (on the root when no span is open). `name` must be a
/// literal. Like count(), the sample also feeds the event trace as a
/// counter track when tracing is active. Name histograms of wall-clock
/// values `*_ns`: the time-like-name rule is what keeps them out of the
/// determinism gates.
void hist(const char* name, std::uint64_t value);

/// RAII wall-clock sampler: records the scope's elapsed nanoseconds
/// into histogram `name` on destruction. Unlike Span it adds no node to
/// the tree and never emits trace events — it is a pure latency sample.
/// Disabled telemetry costs one relaxed atomic load and no clock read.
class HistTimer {
 public:
  explicit HistTimer(const char* name);
  ~HistTimer();
  HistTimer(const HistTimer&) = delete;
  HistTimer& operator=(const HistTimer&) = delete;

 private:
  const char* name_ = nullptr;  ///< Non-null only when armed.
  std::uint64_t start_ns_ = 0;
};

/// Name of the innermost open span on this thread; nullptr when no span
/// is open or telemetry is disabled. The pointer has static storage
/// duration (it is the literal passed to TELEM_SPAN).
const char* current_span_name();

/// The open-span path of this thread, outermost first. Pass it to
/// AttachScope on a worker thread to nest the worker's spans under the
/// fan-out site. Empty when telemetry is disabled.
std::vector<const char*> current_path();

/// Re-roots this thread's telemetry under `path` for the scope's
/// lifetime: spans opened inside nest under path[0]/path[1]/...; the
/// thread's previous span stack (if any — the pool's caller thread
/// participates in its own loops) is suspended and restored on exit.
/// The attach frames are structural only: they add no count and no time.
/// When event tracing is active the scope re-emits the attach path as
/// B/E events on the worker's own track, so a pool worker's timeline
/// shows which fan-out phase each item served.
class AttachScope {
 public:
  explicit AttachScope(const std::vector<const char*>& path);
  ~AttachScope();
  AttachScope(const AttachScope&) = delete;
  AttachScope& operator=(const AttachScope&) = delete;

 private:
  bool active_ = false;
  std::vector<const char*> traced_;  ///< Frames to E-close, outermost first.
};

/// Merges this thread's shadow tree into the global registry now. Only
/// needed for threads that record outside any span and never exit;
/// span-closing threads flush automatically.
void flush_thread();

/// Copy of the merged global tree (flushes the calling thread first).
Node snapshot();

/// Clears the merged global data. Open spans on live threads are
/// unaffected and will merge into the cleared registry when they close.
void reset();

// ---- export ----

/// Human-readable indented tree: count, total ms, mean, counters.
void dump_tree(std::ostream& os);
void dump_tree(std::ostream& os, const Node& root);

/// One JSON object for the whole tree (deterministic serialization:
/// keys sorted, integers exact).
void write_json(std::ostream& os);
void write_json(std::ostream& os, const Node& root);
std::string to_json(const Node& root);

/// One JSON object per line, one line per path:
/// {"path":"a/b","count":..,"total_ns":..,"counters":{...}}
void write_jsonl(std::ostream& os);
void write_jsonl(std::ostream& os, const Node& root);

/// Parses the subset of JSON emitted by write_json back into a Node
/// (round-trip: parse_json(to_json(n)) == n). Throws CheckError on
/// malformed input.
Node parse_json(std::string_view json);

}  // namespace odcfp::telemetry

#if ODCFP_TELEMETRY_ENABLED
#define ODCFP_TELEM_CAT2(a, b) a##b
#define ODCFP_TELEM_CAT(a, b) ODCFP_TELEM_CAT2(a, b)
/// Opens a span for the rest of the enclosing scope. `name` must be a
/// string literal.
#define TELEM_SPAN(name) \
  ::odcfp::telemetry::Span ODCFP_TELEM_CAT(telem_span_, __LINE__)("" name)
/// Adds `n` to counter `name` (a string literal) on the innermost span.
#define TELEM_COUNT(name, n) ::odcfp::telemetry::count("" name, (n))
/// Records one sample into histogram `name` (a string literal).
#define TELEM_HIST(name, v) ::odcfp::telemetry::hist("" name, (v))
/// Samples the elapsed wall time of the enclosing scope into histogram
/// `name` (a string literal — use a `*_ns` suffix).
#define TELEM_HIST_TIMER(name) \
  ::odcfp::telemetry::HistTimer ODCFP_TELEM_CAT(telem_hist_, \
                                                __LINE__)("" name)
#else
#define TELEM_SPAN(name) ((void)0)
#define TELEM_COUNT(name, n) ((void)0)
#define TELEM_HIST(name, v) ((void)0)
#define TELEM_HIST_TIMER(name) ((void)0)
#endif
