// Atomic artifact writes: temp file + fsync + rename.
//
// Every artifact the pipeline produces — fingerprinted BLIF/Verilog
// editions, BENCH_<name>.json reports, trace timelines — goes through
// write_file_atomic so that a reader (or a resumed run) can never observe
// a partially-written file at its final path. The protocol is the
// classic one: the bytes are written to `<path>.tmp.<pid>.<seq>` in the
// same directory, fsync'd, and rename(2)'d over the final path; POSIX
// rename is atomic, so the final path either holds the complete old
// content or the complete new content at every instant, including across
// a SIGKILL at any point of the sequence. A crash leaves at most a stale
// temp file, which remove_stale_temps() sweeps on the next run.
//
// Failures (ENOSPC, EIO, injected faults from the chaos harness) come
// back as a WriteResult carrying a step-naming diagnostic instead of an
// exception, so serving paths can classify them transient and hand them
// to retry_with_backoff (src/common/retry.hpp). The hazardous steps are
// marked with ODCFP_FAULT_POINT sites — atomic_io.open, atomic_io.write
// (once per 64 KiB chunk, so an injected fault produces a genuinely
// partial temp file), atomic_io.fsync, atomic_io.rename — which the
// fault-injection and crash-recovery suites drive deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace odcfp::atomic_io {

struct WriteOptions {
  /// fsync the temp file before the rename (durability of the bytes).
  bool fsync_file = true;
  /// fsync the parent directory after the rename (durability of the
  /// name). Best-effort: some filesystems reject directory fsync; a
  /// failure here never fails the write.
  bool fsync_dir = true;
};

struct WriteResult {
  bool ok = false;
  /// On failure: which step failed, on what path, and the errno text (or
  /// the injected-fault message). Empty on success.
  std::string error;
};

/// Atomically replaces `path` with `data`. On failure the temp file is
/// unlinked and the final path is untouched (old content, or absent).
WriteResult write_file_atomic(const std::string& path,
                              std::string_view data,
                              const WriteOptions& options = {});

/// Unlinks leftover `*.tmp.*` files in `dir` from crashed writers.
/// Returns the number removed; an unopenable directory removes nothing.
///
/// Concurrent-writer safety: temp names embed the writer's pid
/// (`<path>.tmp.<pid>.<seq>`), and a temp whose owner process is still
/// alive is SKIPPED — in a sharded run several worker processes publish
/// into one artifact directory, and each sweeps it on entry, so the
/// sweep must not delete a sibling's in-flight temp. The liveness check
/// is guarded by age: a temp older than `max_live_age_seconds` is
/// removed even if a process with that pid exists (pid reuse — the
/// original writer is long gone, the pid now names someone else). Temps
/// whose pid field does not parse are always removed.
std::size_t remove_stale_temps(const std::string& dir,
                               long max_live_age_seconds = 3600);

/// mkdir -p. Returns false (with errno intact) only when a component
/// could not be created; an already-existing directory is success.
bool make_dirs(const std::string& dir);

/// True when `path` names an existing file-system entry.
bool exists(const std::string& path);

/// Reads a whole file into `out`. False on any I/O failure.
bool read_file(const std::string& path, std::string* out);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`. Shared by the
/// write-ahead journal's record checksums and the per-artifact payload
/// checksums recorded at commit time.
std::uint32_t crc32(std::string_view data);

/// Streaming form of crc32: feeding a byte stream chunk-by-chunk yields
/// exactly crc32(concatenation). Lets the batch layer digest a streaming
/// codebook without materializing every codeword into one string.
class Crc32 {
 public:
  void update(std::string_view data);
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace odcfp::atomic_io
