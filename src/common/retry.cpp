#include "common/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <new>
#include <thread>

#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/telemetry.hpp"
#include "common/trace.hpp"

namespace odcfp {

namespace {

/// Slice width for interruptible backoff sleeps. Between slices the
/// shared budget is re-polled, so a concurrent cancel or deadline expiry
/// wakes the retry loop within roughly one slice instead of holding the
/// thread for the full backoff.
constexpr double kSleepSliceMs = 5.0;

/// Sleeps ~delay_ms in slices, re-checking `budget` between them.
/// Returns false when the budget died (cancelled, or deadline reached)
/// before the full delay elapsed. The slept time is additionally capped
/// at the budget's remaining deadline, so the retry loop never sleeps
/// past the moment its caller's deadline passes.
bool interruptible_backoff_sleep(double delay_ms, const Budget* budget) {
  if (budget == nullptr) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    return true;
  }
  double remaining = delay_ms;
  while (remaining > 0) {
    if (budget->exhausted()) return false;
    double slice = std::min(remaining, kSleepSliceMs);
    if (budget->has_deadline()) {
      const double to_deadline = budget->remaining_seconds() * 1000.0;
      if (to_deadline <= 0) return false;
      slice = std::min(slice, to_deadline);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(slice));
    remaining -= slice;
  }
  return !budget->exhausted();
}

}  // namespace

double backoff_delay_ms(const RetryPolicy& policy, int attempt) {
  double nominal = policy.base_delay_ms;
  for (int i = 1; i < attempt; ++i) {
    nominal *= policy.multiplier;
    if (nominal >= policy.max_delay_ms) break;
  }
  nominal = std::min(nominal, policy.max_delay_ms);
  if (policy.jitter <= 0) return nominal;
  // Same per-index stream derivation as the batch layer's per-buyer
  // seeds: a fixed mix of (seed, attempt), independent of call site,
  // thread, or wall clock.
  Rng rng(policy.seed ^
          (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(attempt))));
  const double u = rng.next_double();
  return nominal * (1.0 - policy.jitter + policy.jitter * u);
}

RetryStats retry_with_backoff(const char* what, const RetryPolicy& policy,
                              const std::function<Status(int)>& attempt) {
  TELEM_SPAN("retry");
  RetryStats stats;
  const int max_attempts = std::max(policy.max_attempts, 1);
  for (int a = 1; a <= max_attempts; ++a) {
    ++stats.attempts;
    TELEM_COUNT("retry.attempts", 1);
    try {
      const Status s = attempt(a);
      if (s == Status::kOk) {
        stats.status = Status::kOk;
        if (a > 1) {
          log::info("retry.recovered")
              .field("what", what)
              .field("attempts", a);
        }
        return stats;
      }
      if (s != Status::kExhausted) {
        // kInfeasible / kMalformedInput: retrying cannot change the
        // answer — pass the verdict through untouched.
        stats.status = s;
        return stats;
      }
      stats.last_error = "attempt returned kExhausted";
    } catch (const std::bad_alloc&) {
      stats.last_error = "std::bad_alloc";
    } catch (const fault::InjectedIoError& e) {
      stats.last_error = e.what();
    }
    // Any other exception type (CheckError, logic errors) propagates to
    // the caller like un-retried code — it is not a transient fault.
    // Reaching here means the attempt failed transiently.
    TELEM_COUNT("retry.transient_failures", 1);
    if (a == max_attempts) break;
    // Give up *before* sleeping when the shared budget is already dead
    // or the backoff would outlive its deadline.
    const double delay = backoff_delay_ms(policy, a);
    if (policy.budget != nullptr) {
      if (policy.budget->exhausted() ||
          (policy.budget->has_deadline() &&
           policy.budget->remaining_seconds() * 1000.0 < delay)) {
        stats.status = Status::kExhausted;
        TELEM_COUNT("retry.budget_giveups", 1);
        log::warn("retry.budget_giveup")
            .field("what", what)
            .field("attempts", stats.attempts)
            .field("error", stats.last_error);
        return stats;
      }
    }
    stats.backoff_ms.push_back(delay);
    TELEM_COUNT("retry.backoffs", 1);
    trace::instant("retry.backoff", what);
    log::warn("retry.attempt_failed")
        .field("what", what)
        .field("attempt", a)
        .field("backoff_ms", delay)
        .field("error", stats.last_error);
    if (policy.sleep && delay > 0 &&
        !interruptible_backoff_sleep(delay, policy.budget)) {
      // The budget died while we slept (a concurrent cancel, or the
      // deadline arrived mid-backoff). The backoff above is already
      // recorded — the schedule stays deterministic — but the next
      // attempt must not run.
      stats.status = Status::kExhausted;
      TELEM_COUNT("retry.budget_giveups", 1);
      log::warn("retry.budget_giveup")
          .field("what", what)
          .field("attempts", stats.attempts)
          .field("error", stats.last_error);
      return stats;
    }
  }
  stats.status = Status::kExhausted;
  TELEM_COUNT("retry.exhausted", 1);
  log::warn("retry.exhausted")
      .field("what", what)
      .field("attempts", stats.attempts)
      .field("error", stats.last_error);
  return stats;
}

}  // namespace odcfp
