// ISCAS'85-class structured benchmark generators.
//
// The ISCAS'85 netlist files are not redistributable here, but their
// functions are documented (Hansen/Yalcin/Hayes, "Unveiling the ISCAS-85
// benchmarks"): c432 is a 27-channel interrupt controller, c499/c1355 are
// 32-bit single-error-correcting (ECAT) networks, c880 an 8-bit ALU,
// c1908 a 16-bit SEC/DED unit, c3540 an 8-bit ALU with BCD arithmetic,
// c6288 a 16x16 array multiplier. These generators build circuits of the
// same function class and comparable mapped size; the fingerprinting
// statistics depend on structural properties (FFC/ODC frequency, depth),
// which these constructions reproduce. See DESIGN.md "Substitutions".
#pragma once

#include "synth/sop_network.hpp"

namespace odcfp {

/// The real c17 (5 inputs, 2 outputs, 6 NAND2) — exact.
SopNetwork make_c17();

/// c432-class: priority interrupt controller. `channels` request lines in
/// groups of `group_size`, with per-line enables, priority resolution and
/// encoded outputs.
SopNetwork make_priority_controller(int channels, int group_size,
                                    const std::string& name);

/// c499/c1355-class: 32-bit error-correction network (data + check inputs,
/// syndrome decode, corrected data outputs). `variant` perturbs the
/// deterministic parity-subset choice so c499 and c1355 differ.
SopNetwork make_ecat(int data_bits, int check_bits, int variant,
                     const std::string& name);

/// c880/c3540-class ALU. `extended` adds subtract, shifts, BCD adjust and
/// flag logic (c3540); otherwise a plain add/logic ALU (c880).
SopNetwork make_alu(int width, bool extended, const std::string& name);

/// c1908-class: SEC/DED error correction with writeback re-check.
SopNetwork make_sec_ded(int data_bits, int check_bits,
                        const std::string& name);

/// c6288-class: width x width array multiplier (AND matrix + carry-save
/// adder array).
SopNetwork make_array_multiplier(int width, const std::string& name);

}  // namespace odcfp
