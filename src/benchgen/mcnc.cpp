#include "benchgen/mcnc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "benchgen/sop_builder.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace odcfp {

namespace {

// The eight DES S-boxes (row-major: row * 16 + column).
constexpr std::uint8_t kSbox[8][64] = {
    {14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
     0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
     4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
     15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
    {15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
     3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
     0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
     13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
    {10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
     13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
     13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
     1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
    {7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
     13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
     10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
     3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
    {2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
     14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
     4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
     11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
    {12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
     10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
     9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
     4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
    {4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
     13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
     1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
     6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
    {13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
     1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
     7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
     2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}};

/// S-box output bit k as an SOP node over the 6 input signals.
/// Input bit i of the minterm index is fanin i; row = (b5<<1)|b0,
/// col = b4 b3 b2 b1 (the standard DES convention).
SignalId sbox_output(SopBuilder& b, int box, int k,
                     const std::vector<SignalId>& ins) {
  ODCFP_CHECK(ins.size() == 6);
  std::vector<SopCube> cubes;
  for (unsigned m = 0; m < 64; ++m) {
    const unsigned b0 = m & 1, b5 = (m >> 5) & 1;
    const unsigned row = (b5 << 1) | b0;
    const unsigned col = (m >> 1) & 0xf;
    if ((kSbox[box][row * 16 + col] >> k) & 1) {
      SopCube cube;
      for (int i = 0; i < 6; ++i) {
        cube.lits.push_back(((m >> i) & 1) ? CubeLit::kPos : CubeLit::kNeg);
      }
      cubes.push_back(std::move(cube));
    }
  }
  return b.sop(ins, std::move(cubes));
}

}  // namespace

SopNetwork make_des_like(int rounds, const std::string& name) {
  ODCFP_CHECK(rounds >= 1 && rounds <= 4);
  SopBuilder b(name);
  std::vector<SignalId> left, right;
  for (int i = 0; i < 32; ++i) {
    left.push_back(b.input("L" + std::to_string(i)));
  }
  for (int i = 0; i < 32; ++i) {
    right.push_back(b.input("R" + std::to_string(i)));
  }

  for (int r = 0; r < rounds; ++r) {
    std::vector<SignalId> key;
    for (int j = 0; j < 48; ++j) {
      key.push_back(
          b.input("K" + std::to_string(r) + "_" + std::to_string(j)));
    }
    // Expansion (deterministic spread with duplicates, like DES's E).
    std::vector<SignalId> x;
    for (int j = 0; j < 48; ++j) {
      const SignalId e = right[static_cast<std::size_t>((j * 21 + 5) % 32)];
      x.push_back(b.xor2(e, key[static_cast<std::size_t>(j)]));
    }
    // S-boxes.
    std::vector<SignalId> f(32);
    for (int box = 0; box < 8; ++box) {
      std::vector<SignalId> ins(x.begin() + box * 6,
                                x.begin() + box * 6 + 6);
      for (int k = 0; k < 4; ++k) {
        // P-permutation (deterministic spread).
        const int out_pos = ((box * 4 + k) * 11 + 3) % 32;
        f[static_cast<std::size_t>(out_pos)] =
            sbox_output(b, box, k, ins);
      }
    }
    // Feistel swap.
    std::vector<SignalId> new_right;
    for (int i = 0; i < 32; ++i) {
      new_right.push_back(b.xor2(left[static_cast<std::size_t>(i)],
                                 f[static_cast<std::size_t>(i)]));
    }
    left = right;
    right = std::move(new_right);
  }

  for (int i = 0; i < 32; ++i) {
    b.output(left[static_cast<std::size_t>(i)], "OL" + std::to_string(i));
    b.output(right[static_cast<std::size_t>(i)], "OR" + std::to_string(i));
  }
  return std::move(b).take();
}

SopNetwork make_random_network(const RandomNetworkProfile& profile,
                               const std::string& name) {
  ODCFP_CHECK(profile.num_inputs > 1 && profile.num_outputs >= 1 &&
              profile.num_nodes >= profile.num_outputs &&
              profile.num_levels >= 1 &&
              profile.min_fanin >= 1 &&
              profile.max_fanin >= profile.min_fanin);
  SopBuilder b(name);
  Rng rng(profile.seed);

  std::vector<SignalId> pis;
  for (int i = 0; i < profile.num_inputs; ++i) {
    pis.push_back(b.input("I" + std::to_string(i)));
  }

  // Level 0 = the PIs; nodes are distributed over the remaining levels.
  std::vector<std::vector<SignalId>> levels{pis};
  std::vector<std::size_t> use_count;  // parallel to a flat signal list
  std::vector<SignalId> flat = pis;
  use_count.assign(flat.size(), 0);

  const int per_level =
      std::max(1, profile.num_nodes / profile.num_levels);
  int remaining = profile.num_nodes;
  for (int lvl = 1; lvl <= profile.num_levels && remaining > 0; ++lvl) {
    const int count = (lvl == profile.num_levels)
                          ? remaining
                          : std::min(per_level, remaining);
    std::vector<SignalId> this_level;
    // Candidate fanins: signals from the last `window_levels` levels.
    std::vector<std::size_t> window;  // indices into flat
    std::size_t start_sig = 0;
    {
      int first_lvl = std::max(0, lvl - profile.window_levels);
      for (int l2 = 0; l2 < first_lvl; ++l2) {
        start_sig += levels[static_cast<std::size_t>(l2)].size();
      }
    }
    for (std::size_t s = start_sig; s < flat.size(); ++s) {
      window.push_back(s);
    }

    for (int nidx = 0; nidx < count; ++nidx) {
      const std::int64_t hi = std::min<std::int64_t>(
          profile.max_fanin, static_cast<std::int64_t>(window.size()));
      const std::int64_t lo =
          std::min<std::int64_t>(profile.min_fanin, hi);
      const int k = static_cast<int>(rng.next_in(lo, hi));
      // Pick k distinct fanins, biased toward less-used signals.
      std::vector<SignalId> fanins;
      std::vector<std::size_t> picked;
      for (int t = 0; t < k; ++t) {
        std::size_t best_idx = 0;
        bool have = false;
        // Tournament of 3 random candidates; fewest uses wins.
        for (int c = 0; c < 3; ++c) {
          const std::size_t cand = window[static_cast<std::size_t>(
              rng.next_below(window.size()))];
          if (std::find(picked.begin(), picked.end(), cand) !=
              picked.end()) {
            continue;
          }
          if (!have || use_count[cand] < use_count[best_idx]) {
            best_idx = cand;
            have = true;
          }
        }
        if (!have) continue;
        picked.push_back(best_idx);
        fanins.push_back(flat[best_idx]);
        use_count[best_idx]++;
      }
      if (fanins.size() < 2) {
        // Degenerate pick; fall back to two distinct random signals.
        fanins.clear();
        const std::size_t a = window[static_cast<std::size_t>(
            rng.next_below(window.size()))];
        std::size_t c = a;
        while (c == a) {
          c = window[static_cast<std::size_t>(
              rng.next_below(window.size()))];
        }
        fanins = {flat[a], flat[c]};
        use_count[a]++;
        use_count[c]++;
      }

      // Random cover.
      const int ncubes =
          static_cast<int>(rng.next_in(1, profile.max_cubes));
      std::vector<SopCube> cubes;
      for (int cu = 0; cu < ncubes; ++cu) {
        SopCube cube;
        bool any = false;
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          const double r = rng.next_double();
          if (r < 0.40) {
            cube.lits.push_back(CubeLit::kPos);
            any = true;
          } else if (r < 0.72) {
            cube.lits.push_back(CubeLit::kNeg);
            any = true;
          } else {
            cube.lits.push_back(CubeLit::kDontCare);
          }
        }
        if (!any) {
          cube.lits[static_cast<std::size_t>(
              rng.next_below(cube.lits.size()))] = CubeLit::kPos;
        }
        cubes.push_back(std::move(cube));
      }
      const SignalId sig = b.sop(fanins, std::move(cubes),
                                 /*complemented=*/rng.next_bool(0.2));
      this_level.push_back(sig);
      flat.push_back(sig);
      use_count.push_back(0);
    }
    remaining -= count;
    levels.push_back(std::move(this_level));
  }

  // Collectors: keep every unused signal alive by folding the leftovers
  // into parity trees, one per output.
  std::vector<std::vector<SignalId>> shares(
      static_cast<std::size_t>(profile.num_outputs));
  std::size_t next_share = 0;
  for (std::size_t s = static_cast<std::size_t>(profile.num_inputs);
       s < flat.size(); ++s) {
    if (use_count[s] == 0) {
      shares[next_share % shares.size()].push_back(flat[s]);
      ++next_share;
    }
  }
  for (int o = 0; o < profile.num_outputs; ++o) {
    auto& share = shares[static_cast<std::size_t>(o)];
    if (share.empty()) {
      // No leftovers for this output: tap a random internal signal.
      share.push_back(flat[static_cast<std::size_t>(
          profile.num_inputs +
          static_cast<int>(rng.next_below(
              flat.size() -
              static_cast<std::size_t>(profile.num_inputs))))]);
    }
    b.output(share.size() == 1 ? share[0] : b.parity(share),
             "Z" + std::to_string(o));
  }
  return std::move(b).take();
}

Netlist make_calibrated_random(const RandomNetworkProfile& base_profile,
                               std::size_t target_gates,
                               const std::string& name,
                               const CellLibrary& lib,
                               const MapperOptions& map_options) {
  RandomNetworkProfile profile = base_profile;
  Netlist best(&lib, name);
  double best_err = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 7; ++iter) {
    SopNetwork sop = make_random_network(profile, name);
    Netlist nl = map_to_cells(sop, lib, map_options);
    const double actual = static_cast<double>(nl.num_live_gates());
    const double err =
        std::abs(actual - static_cast<double>(target_gates)) /
        static_cast<double>(target_gates);
    if (err < best_err) {
      best_err = err;
      best = std::move(nl);
    }
    if (best_err < 0.08) break;
    const double ratio = static_cast<double>(target_gates) /
                         std::max(1.0, actual);
    profile.num_nodes = std::max(
        profile.num_outputs + 2,
        static_cast<int>(std::lround(profile.num_nodes *
                                     std::clamp(ratio, 0.4, 2.5))));
  }
  return best;
}

}  // namespace odcfp
