#include "benchgen/iscas.hpp"

#include <algorithm>

#include "benchgen/sop_builder.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace odcfp {

SopNetwork make_c17() {
  SopBuilder b("c17");
  const SignalId i1 = b.input("1");
  const SignalId i2 = b.input("2");
  const SignalId i3 = b.input("3");
  const SignalId i6 = b.input("6");
  const SignalId i7 = b.input("7");
  const SignalId n10 = b.nand_({i1, i3});
  const SignalId n11 = b.nand_({i3, i6});
  const SignalId n16 = b.nand_({i2, n11});
  const SignalId n19 = b.nand_({n11, i7});
  b.output(b.nand_({n10, n16}), "22");
  b.output(b.nand_({n16, n19}), "23");
  return std::move(b).take();
}

SopNetwork make_priority_controller(int channels, int group_size,
                                    const std::string& name) {
  ODCFP_CHECK(channels > 0 && group_size > 0 &&
              channels % group_size == 0);
  SopBuilder b(name);
  const int groups = channels / group_size;

  // Request lines and per-line enables (36 PIs for 27/9: 27 + 9).
  std::vector<std::vector<SignalId>> req(
      static_cast<std::size_t>(groups));
  std::vector<SignalId> enable;
  for (int e = 0; e < group_size; ++e) {
    enable.push_back(b.input("E" + std::to_string(e)));
  }
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < group_size; ++i) {
      req[static_cast<std::size_t>(g)].push_back(
          b.input("R" + std::to_string(g) + "_" + std::to_string(i)));
    }
  }

  // Masked requests and in-group priority chains.
  std::vector<std::vector<SignalId>> grant(
      static_cast<std::size_t>(groups));
  std::vector<SignalId> group_active;
  for (int g = 0; g < groups; ++g) {
    std::vector<SignalId> masked;
    for (int i = 0; i < group_size; ++i) {
      masked.push_back(b.and_({req[static_cast<std::size_t>(g)]
                                   [static_cast<std::size_t>(i)],
                               enable[static_cast<std::size_t>(i)]}));
    }
    // grant_i = masked_i & none of masked_0..masked_{i-1}
    for (int i = 0; i < group_size; ++i) {
      if (i == 0) {
        grant[static_cast<std::size_t>(g)].push_back(masked[0]);
      } else {
        std::vector<SignalId> above(
            masked.begin(), masked.begin() + i);
        const SignalId none_above = b.nor_(above);
        grant[static_cast<std::size_t>(g)].push_back(
            b.and_({masked[static_cast<std::size_t>(i)], none_above}));
      }
    }
    group_active.push_back(b.or_(masked));
  }

  // Inter-group priority: group g wins if active and no lower group is.
  std::vector<SignalId> group_sel;
  for (int g = 0; g < groups; ++g) {
    if (g == 0) {
      group_sel.push_back(group_active[0]);
    } else {
      std::vector<SignalId> above(group_active.begin(),
                                  group_active.begin() + g);
      group_sel.push_back(
          b.and_({group_active[static_cast<std::size_t>(g)],
                  b.nor_(above)}));
    }
  }

  // Outputs: per-group "bus active" plus a binary encoding of the winning
  // channel index within the winning group.
  for (int g = 0; g < groups; ++g) {
    b.output(group_sel[static_cast<std::size_t>(g)],
             "PA" + std::to_string(g));
  }
  int bits = 0;
  while ((1 << bits) < group_size) ++bits;
  for (int bit = 0; bit < bits; ++bit) {
    std::vector<SignalId> terms;
    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < group_size; ++i) {
        if ((i >> bit) & 1) {
          terms.push_back(
              b.and_({group_sel[static_cast<std::size_t>(g)],
                      grant[static_cast<std::size_t>(g)]
                           [static_cast<std::size_t>(i)]}));
        }
      }
    }
    b.output(b.or_(terms), "PC" + std::to_string(bit));
  }
  return std::move(b).take();
}

SopNetwork make_ecat(int data_bits, int check_bits, int variant,
                     const std::string& name) {
  ODCFP_CHECK(data_bits > 0 && check_bits > 1 && check_bits <= 8);
  SopBuilder b(name);
  Rng rng(0x5ec5u + static_cast<std::uint64_t>(variant) * 7919);

  std::vector<SignalId> data, check;
  for (int i = 0; i < data_bits; ++i) {
    data.push_back(b.input("D" + std::to_string(i)));
  }
  for (int j = 0; j < check_bits; ++j) {
    check.push_back(b.input("K" + std::to_string(j)));
  }
  const SignalId ctrl = b.input("EN");

  // Deterministic parity subsets (each data bit participates in the
  // checks given by its pattern; patterns are distinct and non-zero).
  std::vector<unsigned> pattern(static_cast<std::size_t>(data_bits));
  std::vector<bool> used(1u << check_bits, false);
  used[0] = true;
  for (int i = 0; i < data_bits; ++i) {
    unsigned p;
    do {
      p = static_cast<unsigned>(
          rng.next_below((1u << check_bits) - 1)) + 1;
    } while (used[p]);
    used[p] = true;
    pattern[static_cast<std::size_t>(i)] = p;
  }

  // Syndromes: parity of participating data bits xor the check bit.
  std::vector<SignalId> syndrome;
  for (int j = 0; j < check_bits; ++j) {
    std::vector<SignalId> members;
    for (int i = 0; i < data_bits; ++i) {
      if ((pattern[static_cast<std::size_t>(i)] >> j) & 1) {
        members.push_back(data[static_cast<std::size_t>(i)]);
      }
    }
    members.push_back(check[static_cast<std::size_t>(j)]);
    syndrome.push_back(b.parity(members));
  }

  // Corrected data: flip data_i when the syndrome matches its pattern
  // (and correction is enabled).
  for (int i = 0; i < data_bits; ++i) {
    std::vector<SignalId> ins = syndrome;
    std::vector<bool> neg;
    for (int j = 0; j < check_bits; ++j) {
      neg.push_back(((pattern[static_cast<std::size_t>(i)] >> j) & 1) == 0);
    }
    const SignalId match = b.and_lits(ins, neg);
    const SignalId flip = b.and_({match, ctrl});
    b.output(b.xor2(data[static_cast<std::size_t>(i)], flip),
             "O" + std::to_string(i));
  }
  return std::move(b).take();
}

SopNetwork make_alu(int width, bool extended, const std::string& name) {
  ODCFP_CHECK(width >= 2);
  SopBuilder b(name);
  std::vector<SignalId> a, bb, mask;
  for (int i = 0; i < width; ++i) {
    a.push_back(b.input("A" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    bb.push_back(b.input("B" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    mask.push_back(b.input("M" + std::to_string(i)));
  }
  const SignalId cin = b.input("CIN");
  const SignalId op0 = b.input("OP0");
  const SignalId op1 = b.input("OP1");
  const SignalId sub = b.input("SUB");

  // Masked operands.
  std::vector<SignalId> am, bm;
  for (int i = 0; i < width; ++i) {
    am.push_back(b.and_({a[static_cast<std::size_t>(i)],
                         mask[static_cast<std::size_t>(i)]}));
    // Subtract: complement B (plus cin as +1 supplied by the caller).
    bm.push_back(b.xor2(bb[static_cast<std::size_t>(i)], sub));
  }

  // Adder.
  const std::vector<SignalId> sum = b.ripple_add(am, bm, cin);

  // Logic units.
  std::vector<SignalId> land, lor, lxor;
  for (int i = 0; i < width; ++i) {
    land.push_back(b.and_({am[static_cast<std::size_t>(i)],
                           bm[static_cast<std::size_t>(i)]}));
    lor.push_back(b.or_({am[static_cast<std::size_t>(i)],
                         bm[static_cast<std::size_t>(i)]}));
    lxor.push_back(b.xor2(am[static_cast<std::size_t>(i)],
                          bm[static_cast<std::size_t>(i)]));
  }

  // Function select: op1 op0 — 00 add, 01 and, 10 or, 11 xor.
  std::vector<SignalId> f;
  for (int i = 0; i < width; ++i) {
    const SignalId lo = b.mux(op0, sum[static_cast<std::size_t>(i)],
                              land[static_cast<std::size_t>(i)]);
    const SignalId hi = b.mux(op0, lor[static_cast<std::size_t>(i)],
                              lxor[static_cast<std::size_t>(i)]);
    f.push_back(b.mux(op1, lo, hi));
  }

  if (extended) {
    // BCD adjust per nibble: if nibble > 9, add 6.
    const int nibbles = width / 4;
    std::vector<SignalId> adjusted = f;
    for (int nb = 0; nb < nibbles; ++nb) {
      const std::size_t base = static_cast<std::size_t>(4 * nb);
      const SignalId gt9 =
          b.or_({b.and_({f[base + 3], f[base + 2]}),
                 b.and_({f[base + 3], f[base + 1]})});
      // add 6 (0110) to the nibble when gt9; constant-0 via empty cover.
      const SignalId zero = b.sop({gt9}, {});
      std::vector<SignalId> nib(f.begin() + static_cast<long>(base),
                                f.begin() + static_cast<long>(base) + 4);
      std::vector<SignalId> six = {zero, gt9, gt9, zero};
      const std::vector<SignalId> adj = b.ripple_add(nib, six, zero);
      for (int k = 0; k < 4; ++k) {
        adjusted[base + static_cast<std::size_t>(k)] =
            adj[static_cast<std::size_t>(k)];
      }
    }
    // Shifter: select among adjusted, <<1, >>1 via two extra controls.
    const SignalId sh0 = b.input("SH0");
    const SignalId sh1 = b.input("SH1");
    std::vector<SignalId> shifted;
    const SignalId zero_fill = b.and_lits({cin}, {true});
    for (int i = 0; i < width; ++i) {
      const SignalId left =
          (i == 0) ? zero_fill : adjusted[static_cast<std::size_t>(i - 1)];
      const SignalId right = (i == width - 1)
                                 ? zero_fill
                                 : adjusted[static_cast<std::size_t>(i + 1)];
      const SignalId pick_l =
          b.mux(sh0, adjusted[static_cast<std::size_t>(i)], left);
      shifted.push_back(b.mux(sh1, pick_l, right));
    }
    f = shifted;

    // Flags: zero, parity, carry-out, overflow-ish.
    std::vector<SignalId> fneg;
    for (SignalId s : f) fneg.push_back(b.not_(s));
    b.output(b.and_(fneg), "ZERO");
    b.output(b.parity(f), "PAR");
    b.output(sum.back(), "COUT");
    b.output(b.xor2(sum.back(), sum[static_cast<std::size_t>(width - 1)]),
             "OVF");
  } else {
    b.output(sum.back(), "COUT");
    b.output(b.parity(f), "PAR");
  }

  for (int i = 0; i < width; ++i) {
    b.output(f[static_cast<std::size_t>(i)], "F" + std::to_string(i));
  }
  return std::move(b).take();
}

SopNetwork make_sec_ded(int data_bits, int check_bits,
                        const std::string& name) {
  ODCFP_CHECK(data_bits > 0 && check_bits > 1 && check_bits <= 8);
  SopBuilder b(name);
  Rng rng(0xdedull);

  std::vector<SignalId> data, check;
  for (int i = 0; i < data_bits; ++i) {
    data.push_back(b.input("D" + std::to_string(i)));
  }
  for (int j = 0; j < check_bits; ++j) {
    check.push_back(b.input("K" + std::to_string(j)));
  }
  const SignalId en = b.input("EN");

  std::vector<unsigned> pattern(static_cast<std::size_t>(data_bits));
  std::vector<bool> used(1u << check_bits, false);
  used[0] = true;
  for (int i = 0; i < data_bits; ++i) {
    unsigned p;
    do {
      p = static_cast<unsigned>(
          rng.next_below((1u << check_bits) - 1)) + 1;
    } while (used[p] || __builtin_popcount(p) < 2);
    used[p] = true;
    pattern[static_cast<std::size_t>(i)] = p;
  }

  std::vector<SignalId> syndrome;
  for (int j = 0; j < check_bits; ++j) {
    std::vector<SignalId> members;
    for (int i = 0; i < data_bits; ++i) {
      if ((pattern[static_cast<std::size_t>(i)] >> j) & 1) {
        members.push_back(data[static_cast<std::size_t>(i)]);
      }
    }
    members.push_back(check[static_cast<std::size_t>(j)]);
    syndrome.push_back(b.parity(members));
  }

  // Corrected data outputs.
  std::vector<SignalId> corrected;
  for (int i = 0; i < data_bits; ++i) {
    std::vector<bool> neg;
    for (int j = 0; j < check_bits; ++j) {
      neg.push_back(((pattern[static_cast<std::size_t>(i)] >> j) & 1) == 0);
    }
    const SignalId match = b.and_lits(syndrome, neg);
    const SignalId flip = b.and_({match, en});
    corrected.push_back(b.xor2(data[static_cast<std::size_t>(i)], flip));
    b.output(corrected.back(), "O" + std::to_string(i));
  }

  // Writeback re-check: recompute the check bits from the corrected data
  // and compare (models the DED path; also deepens the circuit).
  std::vector<SignalId> recheck_ok;
  for (int j = 0; j < check_bits; ++j) {
    std::vector<SignalId> members;
    for (int i = 0; i < data_bits; ++i) {
      if ((pattern[static_cast<std::size_t>(i)] >> j) & 1) {
        members.push_back(corrected[static_cast<std::size_t>(i)]);
      }
    }
    const SignalId recomputed = b.parity(members);
    recheck_ok.push_back(
        b.xnor2(recomputed, check[static_cast<std::size_t>(j)]));
    b.output(syndrome[static_cast<std::size_t>(j)],
             "S" + std::to_string(j));
  }
  b.output(b.and_(recheck_ok), "OK");
  b.output(b.parity(syndrome), "PERR");
  return std::move(b).take();
}

SopNetwork make_array_multiplier(int width, const std::string& name) {
  ODCFP_CHECK(width >= 2 && width <= 24);
  SopBuilder b(name);
  std::vector<SignalId> a, bb;
  for (int i = 0; i < width; ++i) {
    a.push_back(b.input("A" + std::to_string(i)));
  }
  for (int i = 0; i < width; ++i) {
    bb.push_back(b.input("B" + std::to_string(i)));
  }

  // Partial-product matrix.
  std::vector<std::vector<SignalId>> pp(
      static_cast<std::size_t>(2 * width));
  for (int i = 0; i < width; ++i) {
    for (int j = 0; j < width; ++j) {
      pp[static_cast<std::size_t>(i + j)].push_back(
          b.and_({a[static_cast<std::size_t>(i)],
                  bb[static_cast<std::size_t>(j)]}));
    }
  }

  // Carry-save reduction: compress columns with full adders until every
  // column has at most 2 entries, then ripple. Consuming FIFO (oldest
  // entries first) makes each round reduce the column in parallel —
  // freshly produced sums are only consumed in the next round — keeping
  // the array depth logarithmic-in-rows like a Dadda reduction.
  bool again = true;
  while (again) {
    again = false;
    for (std::size_t col = 0; col < pp.size(); ++col) {
      while (pp[col].size() >= 3) {
        const SignalId x = pp[col][0];
        const SignalId y = pp[col][1];
        const SignalId z = pp[col][2];
        pp[col].erase(pp[col].begin(), pp[col].begin() + 3);
        const SopBuilder::SumCarry sc = b.full_adder(x, y, z);
        pp[col].push_back(sc.sum);
        if (col + 1 < pp.size()) pp[col + 1].push_back(sc.carry);
        again = true;
      }
    }
  }

  // Final ripple over the two rows.
  SignalId carry = kInvalidSignal;
  for (std::size_t col = 0; col < pp.size(); ++col) {
    SignalId s;
    if (pp[col].empty()) {
      s = carry;  // only the carry remains (top column)
      carry = kInvalidSignal;
    } else if (pp[col].size() == 1 && carry == kInvalidSignal) {
      s = pp[col][0];
    } else if (pp[col].size() == 1) {
      const SopBuilder::SumCarry sc = b.half_adder(pp[col][0], carry);
      s = sc.sum;
      carry = sc.carry;
    } else {  // two entries (+ maybe carry)
      if (carry == kInvalidSignal) {
        const SopBuilder::SumCarry sc = b.half_adder(pp[col][0], pp[col][1]);
        s = sc.sum;
        carry = sc.carry;
      } else {
        const SopBuilder::SumCarry sc =
            b.full_adder(pp[col][0], pp[col][1], carry);
        s = sc.sum;
        carry = sc.carry;
      }
    }
    if (s != kInvalidSignal) {
      b.output(s, "P" + std::to_string(col));
    }
  }
  return std::move(b).take();
}

}  // namespace odcfp
