// Convenience layer for constructing SopNetwork logic: named gates,
// balanced trees, adders, muxes. Used by the structured benchmark
// generators (ISCAS'85-class circuits) in iscas.cpp / mcnc.cpp.
#pragma once

#include <string>
#include <vector>

#include "synth/sop_network.hpp"

namespace odcfp {

class SopBuilder {
 public:
  explicit SopBuilder(std::string model_name);

  SopNetwork take() && { return std::move(net_); }
  SopNetwork& network() { return net_; }

  SignalId input(const std::string& name);
  void output(SignalId sig, const std::string& name);

  /// Elementary nodes (single-output covers over explicit fanins).
  SignalId not_(SignalId a);
  SignalId buf(SignalId a);
  SignalId and_(const std::vector<SignalId>& ins);
  SignalId or_(const std::vector<SignalId>& ins);
  SignalId nand_(const std::vector<SignalId>& ins);
  SignalId nor_(const std::vector<SignalId>& ins);
  SignalId xor2(SignalId a, SignalId b);
  SignalId xnor2(SignalId a, SignalId b);
  SignalId mux(SignalId sel, SignalId a0, SignalId a1);  // sel ? a1 : a0

  /// AND of literals with per-literal polarity (true = complemented).
  SignalId and_lits(const std::vector<SignalId>& ins,
                    const std::vector<bool>& negate);

  /// Balanced XOR tree (parity) over the inputs.
  SignalId parity(const std::vector<SignalId>& ins);

  /// Full adder; returns {sum, carry}.
  struct SumCarry {
    SignalId sum;
    SignalId carry;
  };
  SumCarry full_adder(SignalId a, SignalId b, SignalId cin);
  SumCarry half_adder(SignalId a, SignalId b);

  /// Ripple-carry adder over equal-width vectors; returns sum bits plus
  /// the final carry appended.
  std::vector<SignalId> ripple_add(const std::vector<SignalId>& a,
                                   const std::vector<SignalId>& b,
                                   SignalId cin);

  /// Installs a raw SOP node (general cover) and returns its signal.
  SignalId sop(const std::vector<SignalId>& fanins,
               std::vector<SopCube> cubes, bool complemented = false);

 private:
  SignalId fresh(const std::string& prefix);

  SopNetwork net_;
  std::uint64_t counter_ = 0;
};

}  // namespace odcfp
