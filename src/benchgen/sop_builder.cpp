#include "benchgen/sop_builder.hpp"

#include "common/check.hpp"

namespace odcfp {

SopBuilder::SopBuilder(std::string model_name)
    : net_(std::move(model_name)) {}

SignalId SopBuilder::fresh(const std::string& prefix) {
  for (;;) {
    std::string name = prefix + std::to_string(counter_++);
    if (net_.find_signal(name) == kInvalidSignal) {
      return net_.signal(name);
    }
  }
}

SignalId SopBuilder::input(const std::string& name) {
  const SignalId id = net_.signal(name);
  net_.mark_input(id);
  return id;
}

void SopBuilder::output(SignalId sig, const std::string& name) {
  // BLIF-style outputs are named signals; alias through a buffer node if
  // the desired name differs.
  if (net_.signal_name(sig) == name) {
    net_.mark_output(sig);
    return;
  }
  const SignalId alias = net_.signal(name);
  SopNode node;
  node.fanins = {sig};
  node.cubes = {{std::vector<CubeLit>{CubeLit::kPos}}};
  net_.set_node(alias, std::move(node));
  net_.mark_output(alias);
}

SignalId SopBuilder::sop(const std::vector<SignalId>& fanins,
                         std::vector<SopCube> cubes, bool complemented) {
  const SignalId id = fresh("n");
  SopNode node;
  node.fanins = fanins;
  node.cubes = std::move(cubes);
  node.complemented = complemented;
  net_.set_node(id, std::move(node));
  return id;
}

SignalId SopBuilder::not_(SignalId a) {
  return sop({a}, {{std::vector<CubeLit>{CubeLit::kNeg}}});
}

SignalId SopBuilder::buf(SignalId a) {
  return sop({a}, {{std::vector<CubeLit>{CubeLit::kPos}}});
}

SignalId SopBuilder::and_(const std::vector<SignalId>& ins) {
  ODCFP_CHECK(!ins.empty());
  SopCube cube;
  cube.lits.assign(ins.size(), CubeLit::kPos);
  return sop(ins, {cube});
}

SignalId SopBuilder::nand_(const std::vector<SignalId>& ins) {
  ODCFP_CHECK(!ins.empty());
  SopCube cube;
  cube.lits.assign(ins.size(), CubeLit::kPos);
  return sop(ins, {cube}, /*complemented=*/true);
}

SignalId SopBuilder::or_(const std::vector<SignalId>& ins) {
  ODCFP_CHECK(!ins.empty());
  std::vector<SopCube> cubes;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    SopCube cube;
    cube.lits.assign(ins.size(), CubeLit::kDontCare);
    cube.lits[i] = CubeLit::kPos;
    cubes.push_back(std::move(cube));
  }
  return sop(ins, std::move(cubes));
}

SignalId SopBuilder::nor_(const std::vector<SignalId>& ins) {
  ODCFP_CHECK(!ins.empty());
  SopCube cube;
  cube.lits.assign(ins.size(), CubeLit::kNeg);
  return sop(ins, {cube});
}

SignalId SopBuilder::xor2(SignalId a, SignalId b) {
  return sop({a, b}, {{{CubeLit::kPos, CubeLit::kNeg}},
                      {{CubeLit::kNeg, CubeLit::kPos}}});
}

SignalId SopBuilder::xnor2(SignalId a, SignalId b) {
  return sop({a, b}, {{{CubeLit::kPos, CubeLit::kPos}},
                      {{CubeLit::kNeg, CubeLit::kNeg}}});
}

SignalId SopBuilder::mux(SignalId sel, SignalId a0, SignalId a1) {
  // fanins: sel, a0, a1; cover: sel' a0 + sel a1.
  return sop({sel, a0, a1},
             {{{CubeLit::kNeg, CubeLit::kPos, CubeLit::kDontCare}},
              {{CubeLit::kPos, CubeLit::kDontCare, CubeLit::kPos}}});
}

SignalId SopBuilder::and_lits(const std::vector<SignalId>& ins,
                              const std::vector<bool>& negate) {
  ODCFP_CHECK(!ins.empty() && ins.size() == negate.size());
  SopCube cube;
  for (bool n : negate) {
    cube.lits.push_back(n ? CubeLit::kNeg : CubeLit::kPos);
  }
  return sop(ins, {cube});
}

SignalId SopBuilder::parity(const std::vector<SignalId>& ins) {
  ODCFP_CHECK(!ins.empty());
  std::vector<SignalId> layer = ins;
  while (layer.size() > 1) {
    std::vector<SignalId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(xor2(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

SopBuilder::SumCarry SopBuilder::full_adder(SignalId a, SignalId b,
                                            SignalId cin) {
  const SignalId ab = xor2(a, b);
  const SignalId sum = xor2(ab, cin);
  // carry = ab' (majority): a b + cin (a ^ b)
  const SignalId and_ab = and_({a, b});
  const SignalId and_c = and_({ab, cin});
  const SignalId carry = or_({and_ab, and_c});
  return {sum, carry};
}

SopBuilder::SumCarry SopBuilder::half_adder(SignalId a, SignalId b) {
  return {xor2(a, b), and_({a, b})};
}

std::vector<SignalId> SopBuilder::ripple_add(
    const std::vector<SignalId>& a, const std::vector<SignalId>& b,
    SignalId cin) {
  ODCFP_CHECK(a.size() == b.size() && !a.empty());
  std::vector<SignalId> sums;
  SignalId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const SumCarry sc = full_adder(a[i], b[i], carry);
    sums.push_back(sc.sum);
    carry = sc.carry;
  }
  sums.push_back(carry);
  return sums;
}

}  // namespace odcfp
