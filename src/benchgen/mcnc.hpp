// MCNC-class benchmark generators.
//
// `des` is generated as a genuine DES-style Feistel datapath (expansion,
// key XOR, the eight real DES S-boxes as SOP nodes, P-permutation); the
// remaining MCNC circuits (k2, t481, i10, i8, dalu, vda) are seeded random
// multi-level networks calibrated to the paper's reported mapped gate
// counts and matching the originals' PI/PO counts. See DESIGN.md
// "Substitutions" for why profile-matched synthetics preserve the
// fingerprinting statistics.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "synth/mapper.hpp"
#include "synth/sop_network.hpp"

namespace odcfp {

/// DES-style Feistel network with the real DES S-boxes. PIs: 32+32 data
/// halves plus 48 key bits per round.
SopNetwork make_des_like(int rounds, const std::string& name);

struct RandomNetworkProfile {
  int num_inputs = 32;
  int num_outputs = 16;
  int num_nodes = 300;
  int num_levels = 10;
  int min_fanin = 2;
  int max_fanin = 5;
  int max_cubes = 4;
  int window_levels = 4;  ///< How many earlier levels fanins reach back.
  std::uint64_t seed = 1;
};

/// Seeded random multi-level SOP network. All generated nodes are kept
/// alive by parity "collector" trees feeding the outputs.
SopNetwork make_random_network(const RandomNetworkProfile& profile,
                               const std::string& name);

/// Generates, maps, and iteratively adjusts num_nodes until the mapped
/// gate count is within ~8% of `target_gates` (or iterations run out).
Netlist make_calibrated_random(const RandomNetworkProfile& base_profile,
                               std::size_t target_gates,
                               const std::string& name,
                               const CellLibrary& lib,
                               const MapperOptions& map_options);

}  // namespace odcfp
