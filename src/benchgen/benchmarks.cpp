#include "benchgen/benchmarks.hpp"

#include "benchgen/iscas.hpp"
#include "benchgen/mcnc.hpp"
#include "common/check.hpp"
#include "synth/mapper.hpp"

namespace odcfp {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

MapperOptions mapper_options_for(const std::string& name) {
  MapperOptions opt;
  opt.seed = fnv1a(name);
  opt.nand_nor_fraction = 0.55;
  if (name == "c6288") {
    // The real c6288 is NOR/NAND-only (no XOR cells); expanding the parity
    // logic reproduces both its size and its gate mix.
    opt.detect_xor = false;
  }
  if (name == "c1355") {
    // c1355 is c499 with the XOR modules expanded into NAND equivalents.
    opt.nand_nor_fraction = 0.80;
  }
  return opt;
}

struct RandomRecipe {
  RandomNetworkProfile profile;
  std::size_t target_gates;
};

bool random_recipe_for(const std::string& name, RandomRecipe& out) {
  RandomNetworkProfile p;
  p.seed = fnv1a(name) | 1;
  if (name == "k2") {
    p.num_inputs = 45; p.num_outputs = 45; p.num_nodes = 430;
    p.num_levels = 11;
    out = {p, 1206};
  } else if (name == "t481") {
    p.num_inputs = 16; p.num_outputs = 1; p.num_nodes = 300;
    p.num_levels = 14; p.window_levels = 5;
    out = {p, 826};
  } else if (name == "i10") {
    p.num_inputs = 257; p.num_outputs = 224; p.num_nodes = 570;
    p.num_levels = 12;
    out = {p, 1600};
  } else if (name == "i8") {
    p.num_inputs = 133; p.num_outputs = 81; p.num_nodes = 430;
    p.num_levels = 9;
    out = {p, 1211};
  } else if (name == "dalu") {
    p.num_inputs = 75; p.num_outputs = 16; p.num_nodes = 300;
    p.num_levels = 12;
    out = {p, 836};
  } else if (name == "vda") {
    p.num_inputs = 17; p.num_outputs = 39; p.num_nodes = 225;
    p.num_levels = 9;
    out = {p, 635};
  } else {
    return false;
  }
  return true;
}

}  // namespace

const std::vector<BenchmarkSpec>& table2_benchmarks() {
  static const std::vector<BenchmarkSpec> specs = {
      {"c432", "27-channel priority interrupt controller", 166, 269584,
       9.49, 1349.5, 40, 68.07, 0.1119, 0.5469, 0.0605},
      {"c499", "32-bit single-error-correcting network", 409, 662128, 7.62,
       2951.6, 112, 177.16, 0.0925, 0.3123, 0.1000},
      {"c880", "8-bit ALU", 255, 426880, 6.95, 2068, 38, 66.58, 0.0652,
       0.4705, 0.0586},
      {"c1355", "32-bit SEC network (expanded XOR)", 412, 668160, 7.67,
       2988.2, 118, 187.36, 0.0986, 0.3038, 0.0944},
      {"c1908", "16-bit SEC/DED unit", 395, 635216, 10.66, 2655.4, 88,
       151.25, 0.1140, 0.4653, 0.1192},
      {"c3540", "8-bit ALU with BCD arithmetic", 851, 1469488, 11.64,
       7242.3, 179, 376.79, 0.1010, 0.5052, 0.0946},
      {"c6288", "16x16 array multiplier", 3056, 4797760, 32.92, -1, 420,
       635.26, 0.0629, 0.3433, -1},
      {"des", "DES round logic", 3544, 5831552, 6.64, 23145.3, 782,
       1438.62, 0.1187, 0.7500, 0.0813},
      {"k2", "MCNC two-level control logic", 1206, 2039280, 5.82, 5482.4,
       241, 470.25, 0.1336, 0.7887, 0.0864},
      {"t481", "MCNC single-output function", 826, 1478768, 6.49, 4188.1,
       178, 418.62, 0.1349, 0.7442, 0.0708},
      {"i10", "MCNC combinational logic", 1600, 2676816, 12.65, 9729.9,
       316, 601.15, 0.0985, 0.4870, 0.0903},
      {"i8", "MCNC combinational logic", 1211, 2273600, 4.73, 9621.6, 235,
       541.13, 0.0945, 0.6744, 0.1063},
      {"dalu", "dedicated ALU", 836, 1383184, 10.1, 5275, 298, 507.57,
       0.1597, 0.4713, 0.2145},
      {"vda", "MCNC combinational logic", 635, 1088080, 4.51, 3270.4, 134,
       277.42, 0.1424, 0.5898, 0.0975},
  };
  return specs;
}

const BenchmarkSpec& benchmark_spec(const std::string& name) {
  static const BenchmarkSpec c17_spec = {
      "c17", "smallest ISCAS'85 circuit (exact)", 6, 0, 0, 0,
      0, 0, 0, 0, 0};
  if (name == "c17") return c17_spec;
  for (const BenchmarkSpec& s : table2_benchmarks()) {
    if (s.name == name) return s;
  }
  ODCFP_CHECK_MSG(false, "unknown benchmark '" << name << "'");
}

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names{"c17"};
  for (const BenchmarkSpec& s : table2_benchmarks()) {
    names.push_back(s.name);
  }
  return names;
}

SopNetwork make_benchmark_sop(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name == "c432") return make_priority_controller(27, 9, name);
  if (name == "c499") return make_ecat(32, 8, /*variant=*/0, name);
  if (name == "c880") return make_alu(8, /*extended=*/false, name);
  if (name == "c1355") return make_ecat(32, 8, /*variant=*/1, name);
  if (name == "c1908") return make_sec_ded(24, 8, name);
  if (name == "c3540") return make_alu(16, /*extended=*/true, name);
  if (name == "c6288") return make_array_multiplier(16, name);
  if (name == "des") return make_des_like(2, name);
  RandomRecipe recipe;
  ODCFP_CHECK_MSG(random_recipe_for(name, recipe),
                  "unknown benchmark '" << name << "'");
  return make_random_network(recipe.profile, name);
}

Netlist make_benchmark(const std::string& name, const CellLibrary& lib) {
  const MapperOptions opt = mapper_options_for(name);
  RandomRecipe recipe;
  if (random_recipe_for(name, recipe)) {
    return make_calibrated_random(recipe.profile, recipe.target_gates,
                                  name, lib, opt);
  }
  return map_to_cells(make_benchmark_sop(name), lib, opt);
}

}  // namespace odcfp
