// Benchmark registry: one entry per circuit in the paper's Table II, plus
// c17 for tests. make_benchmark() reproduces the paper's preparation flow
// (logic network -> technology mapping onto the cell library), returning
// the mapped Netlist the fingerprinting pipeline consumes.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "synth/sop_network.hpp"

namespace odcfp {

struct BenchmarkSpec {
  std::string name;
  std::string description;

  // Paper Table II reference values (0 / negative when not listed).
  std::size_t paper_gates = 0;
  double paper_area = 0;
  double paper_delay = 0;
  double paper_power = 0;           ///< -1 when the paper reports N/A.
  int paper_locations = 0;
  double paper_log2_combinations = 0;
  double paper_area_overhead = 0;   ///< Fractions (0.1119 = 11.19%).
  double paper_delay_overhead = 0;
  double paper_power_overhead = 0;  ///< -1 when the paper reports N/A.
};

/// The 14 circuits of Table II, in the paper's row order.
const std::vector<BenchmarkSpec>& table2_benchmarks();

/// Spec lookup by name (includes c17); throws CheckError if unknown.
const BenchmarkSpec& benchmark_spec(const std::string& name);

/// All generatable benchmark names (table2 plus c17).
std::vector<std::string> benchmark_names();

/// The technology-independent network for a benchmark.
SopNetwork make_benchmark_sop(const std::string& name);

/// The mapped netlist (deterministic; per-benchmark mapper settings).
Netlist make_benchmark(const std::string& name,
                       const CellLibrary& lib = default_cell_library());

}  // namespace odcfp
