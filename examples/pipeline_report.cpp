// Pipeline telemetry report: run the full fingerprinting flow on one
// benchmark and print where the time and the solver/heuristic effort
// actually went.
//
//   pipeline_report [circuit] [--json] [--threads N]
//
// Runs location finding (pooled), a window-ODC sample, the full
// embedding, the reactive delay heuristic, and a small multi-buyer batch
// with CEC verification — all instrumented — then dumps the hierarchical
// span tree plus per-subsystem counter breakdowns. With --json the raw
// telemetry tree is printed as JSON instead (for dashboards / diffing).
//
// Telemetry must be enabled for this tool to report anything; it turns
// the runtime toggle on itself, overriding ODCFP_TELEMETRY=0.
//
// For the event-level view of the same run, set ODCFP_TRACE:
//
//   ODCFP_TRACE=trace.json pipeline_report c880
//
// then load trace.json in chrome://tracing or https://ui.perfetto.dev —
// every span below appears as a duration event on its thread's track
// (pool workers are named pool-worker-N), joined to this report's span
// tree by the span-name strings.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "common/trace.hpp"
#include "fingerprint/batch.hpp"
#include "fingerprint/heuristics.hpp"
#include "fingerprint/location.hpp"
#include "odc/window.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

using namespace odcfp;

namespace {

std::int64_t tree_counter(const telemetry::Node& root, const char* name) {
  // Sums a counter over the whole tree (it may appear under several
  // spans — e.g. sat.solve runs under both cec.verify and batch spans).
  std::int64_t total = root.counter(name);
  for (const auto& [child_name, child] : root.children) {
    total += tree_counter(child, name);
  }
  return total;
}

void print_breakdown(const telemetry::Node& root) {
  std::printf("\n-- SAT effort --\n");
  for (const char* c : {"sat.queries", "sat.decisions", "sat.propagations",
                        "sat.conflicts", "sat.restarts",
                        "sat.learned_clauses"}) {
    std::printf("  %-22s %12lld\n", c,
                static_cast<long long>(tree_counter(root, c)));
  }
  std::printf("\n-- ODC analysis --\n");
  for (const char* c : {"odc.windows", "odc.window_gates",
                        "odc.window_inputs", "odc.refused_input_cap",
                        "odc.exhaustions"}) {
    std::printf("  %-22s %12lld\n", c,
                static_cast<long long>(tree_counter(root, c)));
  }
  std::printf("\n-- location finder (Definition 1 rejections) --\n");
  for (const char* c :
       {"loc.candidates", "loc.accepted", "loc.reject.arity",
        "loc.reject.y_not_gate_driven", "loc.reject.y_multi_fanout",
        "loc.reject.no_site_kind", "loc.reject.no_trigger"}) {
    std::printf("  %-28s %12lld\n", c,
                static_cast<long long>(tree_counter(root, c)));
  }
  std::printf("\n-- heuristic / embedding --\n");
  for (const char* c : {"heur.restarts", "heur.iterations", "heur.trials",
                        "heur.greedy_removals", "heur.random_kicks",
                        "heur.sta_evaluations", "embed.applies",
                        "embed.removes", "batch.editions_stamped"}) {
    std::printf("  %-22s %12lld\n", c,
                static_cast<long long>(tree_counter(root, c)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit = "c880";
  bool as_json = false;
  int threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      circuit = argv[i];
    }
  }

  telemetry::set_enabled(true);
  telemetry::reset();
  trace::set_thread_name("main");  // label this track if ODCFP_TRACE is set

  ThreadPool pool(threads);
  const Netlist golden = make_benchmark(circuit);
  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  const Baseline base = Baseline::measure(golden, sta, power);

  // 1. Location finding (pooled phase A, sequential commit).
  LocationFinderOptions lopts;
  lopts.pool = &pool;
  const auto locations = find_locations(golden, lopts);

  // 2. Window-ODC sample: the deeper analysis over the accepted Y nets.
  {
    std::vector<NetId> nets;
    for (const FingerprintLocation& loc : locations) {
      nets.push_back(loc.y_net);
      if (nets.size() >= 64) break;
    }
    WindowOptions wopts;
    wopts.depth = 2;
    wopts.max_window_inputs = 14;
    window_odc_batch(golden, nets, wopts, &pool);
  }

  // 3. Full embedding + reactive reduction under a 10% delay budget.
  {
    Netlist work = golden;
    FingerprintEmbedder embedder(work, locations);
    ReactiveOptions ropts;
    ropts.restarts = 1;
    reactive_reduce(embedder, base, sta, power, ropts);
  }

  // 4. A small buyer batch, stamped and CEC-verified across the pool.
  {
    const Codebook book(locations, /*num_buyers=*/8, /*seed=*/2026);
    BatchOptions bopts;
    bopts.pool = &pool;
    const BatchResult batch =
        batch_fingerprint(golden, book, sta, power, bopts);
    BatchCecOptions copts;
    copts.pool = &pool;
    copts.cec.sat_conflict_limit = 50000;
    batch_verify_equivalence(golden, batch.editions, copts);
  }

  telemetry::flush_thread();
  const telemetry::Node root = telemetry::snapshot();
  if (as_json) {
    std::cout << telemetry::to_json(root) << "\n";
    return 0;
  }

  std::printf("PIPELINE REPORT — %s (%zu gates, %zu locations)\n\n",
              circuit.c_str(), golden.num_live_gates(), locations.size());
  std::printf("-- span tree (wall-clock per span; counts are calls) --\n");
  telemetry::dump_tree(std::cout, root);
  print_breakdown(root);
  std::printf("\n(span timings vary run to run; counts and counters are "
              "deterministic for a fixed pool-visible seed set)\n");
  return 0;
}
