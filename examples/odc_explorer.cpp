// ODC explorer: what the don't-care analyses see in a circuit.
//
// Walks a generated c432-class controller and reports, for a sample of
// nets: the gate-local ODC verdict (the paper's Eq. 1 criterion), the
// exact window-ODC fraction at increasing depths (BDD-based), and the
// Monte-Carlo observability — then prints the first fingerprint location
// in Graphviz DOT form with the primary/site/trigger gates highlighted.
#include <algorithm>
#include <cstdio>

#include "benchgen/benchmarks.hpp"
#include "fingerprint/location.hpp"
#include "netlist/dot.hpp"
#include "odc/odc.hpp"
#include "odc/window.hpp"

using namespace odcfp;

int main() {
  const Netlist nl = make_benchmark("c432");
  std::printf("c432-class controller: %zu gates, %zu nets\n\n",
              nl.num_live_gates(), nl.num_nets());

  std::printf("%-12s %10s %10s %10s %12s\n", "net", "odc@d1", "odc@d2",
              "odc@d3", "sim-observ");
  std::printf("------------------------------------------------------------\n");
  std::size_t printed = 0;
  for (NetId n = 0; n < nl.num_nets() && printed < 12; ++n) {
    if (nl.net(n).driver == kInvalidGate || nl.net(n).fanouts.empty()) {
      continue;
    }
    if (n % 17 != 0) continue;  // sample
    double frac[3] = {-1, -1, -1};
    for (int d = 1; d <= 3; ++d) {
      const WindowOdcResult r = window_odc(nl, n, {.depth = d});
      if (r.computed) frac[d - 1] = r.odc_fraction;
    }
    const double obs = simulated_observability(nl, n, 64, 7);
    auto cell = [&](double v) {
      static char buf[4][16];
      static int slot = 0;
      slot = (slot + 1) % 4;
      if (v < 0) {
        std::snprintf(buf[slot], sizeof(buf[slot]), "(wide)");
      } else {
        std::snprintf(buf[slot], sizeof(buf[slot]), "%.3f", v);
      }
      return buf[slot];
    };
    std::printf("%-12s %10s %10s %10s %12.3f\n",
                nl.net(n).name.c_str(), cell(frac[0]), cell(frac[1]),
                cell(frac[2]), obs);
    ++printed;
  }

  const auto locs = find_locations(nl);
  std::printf("\n%zu fingerprint locations; first location:\n",
              locs.size());
  if (locs.empty()) return 0;
  const FingerprintLocation& loc = locs[0];
  std::printf("  primary %s, Y=%s via pin %d, trigger %s=%d, %zu site(s), "
              "%.2f bits\n",
              nl.gate(loc.primary).name.c_str(),
              nl.net(loc.y_net).name.c_str(), loc.y_pin,
              nl.net(loc.trigger_net).name.c_str(), loc.trigger_value,
              loc.sites.size(), loc.capacity_bits());

  // DOT snippet of the neighborhood (full graph is large; print header +
  // highlighted nodes so the output stays readable).
  DotOptions dopt;
  dopt.gate_attributes[nl.gate(loc.primary).name] =
      "fillcolor=gold,style=filled";
  for (const auto& site : loc.sites) {
    dopt.gate_attributes[nl.gate(site.gate).name] =
        "fillcolor=tomato,style=filled";
  }
  const std::string dot = to_dot_string(nl, dopt);
  std::printf("\nDOT export: %zu bytes (write to a file and render with "
              "graphviz)\n",
              dot.size());
  std::printf("highlighted: primary=gold, injection site=tomato\n");
  return 0;
}
