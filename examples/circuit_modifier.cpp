// The paper's "circuit modifier" as a command-line tool (paper Fig. 6:
// "Input: Circuit in Verilog netlist format / Output: Circuit in Verilog
// netlist format with fingerprints inserted").
//
//   circuit_modifier <in.v> <out.v> [--buyer N] [--seed S]
//                    [--max-delay-overhead F] [--report]
//   circuit_modifier --demo          (no files: runs on a generated ALU)
//
// Reads a structural Verilog netlist over the default cell library, finds
// the fingerprint locations, embeds buyer N's codeword (optionally under a
// delay constraint via the reactive heuristic), verifies equivalence, and
// writes the fingerprinted netlist.
#include <cstdio>
#include <cstring>
#include <string>

#include "benchgen/benchmarks.hpp"
#include "equiv/cec.hpp"
#include "fingerprint/codewords.hpp"
#include "fingerprint/embedder.hpp"
#include "fingerprint/heuristics.hpp"
#include "io/verilog.hpp"

using namespace odcfp;

namespace {

int run(const Netlist& golden, const std::string& out_path,
        std::size_t buyer, std::uint64_t seed, double max_delay_overhead,
        bool report) {
  const auto locations = find_locations(golden);
  if (locations.empty()) {
    std::fprintf(stderr, "no fingerprint locations found\n");
    return 1;
  }
  std::printf("circuit: %zu gates, %zu fingerprint locations, "
              "%.1f bits capacity\n",
              golden.num_live_gates(), locations.size(),
              total_capacity_bits(locations));

  Netlist work = golden;
  FingerprintEmbedder embedder(work, locations);

  if (max_delay_overhead > 0) {
    const StaticTimingAnalyzer sta;
    const PowerAnalyzer power;
    const Baseline base = Baseline::measure(golden, sta, power);
    ReactiveOptions opt;
    opt.max_delay_overhead = max_delay_overhead;
    opt.seed = seed;
    const HeuristicOutcome out =
        reactive_reduce(embedder, base, sta, power, opt);
    std::printf("delay budget %.1f%%: kept %zu/%zu sites "
                "(%.1f of %.1f bits), delay overhead %.2f%%\n",
                max_delay_overhead * 100, out.sites_kept, out.sites_total,
                out.bits_kept, out.bits_total,
                out.overheads.delay_ratio * 100);
    // Restrict the codebook to the surviving sites.
    std::vector<FingerprintLocation> kept;
    for (std::size_t l = 0; l < locations.size(); ++l) {
      FingerprintLocation loc = locations[l];
      loc.sites.clear();
      for (std::size_t s = 0; s < locations[l].sites.size(); ++s) {
        if (out.code[l][s] != 0) loc.sites.push_back(locations[l].sites[s]);
      }
      if (!loc.sites.empty()) kept.push_back(std::move(loc));
    }
    embedder.remove_all();
    Netlist shipped = golden;
    FingerprintEmbedder final_embedder(shipped, kept);
    const Codebook book(kept, buyer + 1, seed);
    final_embedder.apply_code(book.code(buyer));
    if (!random_sim_equal(golden, shipped, 256, seed)) {
      std::fprintf(stderr, "equivalence check FAILED — not writing\n");
      return 1;
    }
    if (!out_path.empty()) write_verilog_file(out_path, shipped);
    if (report) {
      const FingerprintCode code = extract_code(shipped, golden, kept);
      std::printf("embedded code verified by extraction: %s\n",
                  code == book.code(buyer) ? "OK" : "MISMATCH");
    }
  } else {
    const Codebook book(locations, buyer + 1, seed);
    embedder.apply_code(book.code(buyer));
    if (!random_sim_equal(golden, work, 256, seed)) {
      std::fprintf(stderr, "equivalence check FAILED — not writing\n");
      return 1;
    }
    if (!out_path.empty()) write_verilog_file(out_path, work);
    if (report) {
      const FingerprintCode code = extract_code(work, golden, locations);
      std::printf("embedded code verified by extraction: %s\n",
                  code == book.code(buyer) ? "OK" : "MISMATCH");
    }
  }
  if (!out_path.empty()) {
    std::printf("wrote fingerprinted netlist to %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in_path, out_path;
  std::size_t buyer = 0;
  std::uint64_t seed = 1;
  double max_delay_overhead = 0;
  bool report = false;
  bool demo = (argc <= 1);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--buyer" && i + 1 < argc) {
      buyer = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (arg == "--max-delay-overhead" && i + 1 < argc) {
      max_delay_overhead = std::stod(argv[++i]);
    } else if (arg == "--report") {
      report = true;
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  try {
    if (demo) {
      std::printf("demo mode: fingerprinting a generated c880-class ALU "
                  "for buyer %zu\n", buyer);
      return run(make_benchmark("c880"), out_path, buyer, seed,
                 max_delay_overhead, /*report=*/true);
    }
    if (in_path.empty()) {
      std::fprintf(stderr,
                   "usage: circuit_modifier <in.v> <out.v> [--buyer N] "
                   "[--seed S] [--max-delay-overhead F] [--report]\n");
      return 2;
    }
    const Netlist golden =
        read_verilog_file(in_path, default_cell_library());
    return run(golden, out_path, buyer, seed, max_delay_overhead, report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
