// IP vendor flow: the end-to-end scenario from the paper's introduction.
//
// A vendor maps an IP (the c880-class 8-bit ALU) onto the cell library,
// computes its fingerprint locations once, then stamps out one distinctly
// fingerprinted Verilog netlist per buyer. Later, a suspicious netlist
// resurfaces; the vendor re-reads it, extracts the embedded code by
// structural comparison against the golden design, and identifies the
// buyer it was sold to.
#include <cstdio>
#include <sstream>

#include "benchgen/benchmarks.hpp"
#include "equiv/cec.hpp"
#include "fingerprint/codewords.hpp"
#include "fingerprint/embedder.hpp"
#include "fingerprint/heuristics.hpp"
#include "io/verilog.hpp"
#include "timing/sta.hpp"

using namespace odcfp;

int main() {
  const std::size_t kBuyers = 8;

  // 1. Design entry + technology mapping (the ABC step of the paper).
  const Netlist golden = make_benchmark("c880");
  std::printf("golden c880-class ALU: %zu gates, area %.0f\n",
              golden.num_live_gates(), golden.total_area());

  // 2. Fingerprint infrastructure: locations + buyer codebook.
  const auto locations = find_locations(golden);
  std::printf("fingerprint locations: %zu (capacity %.1f bits, usable "
              "%zu bits)\n",
              locations.size(), total_capacity_bits(locations),
              usable_bits(locations));
  const Codebook book(locations, kBuyers, /*seed=*/424242);

  // 3. Stamp one netlist per buyer and ship Verilog.
  std::vector<std::string> shipped;
  for (std::size_t buyer = 0; buyer < kBuyers; ++buyer) {
    Netlist copy = golden;
    FingerprintEmbedder embedder(copy, locations);
    embedder.apply_code(book.code(buyer));
    // Every shipped copy must be functionally identical to the design.
    if (!random_sim_equal(golden, copy, 128, 7)) {
      std::printf("buyer %zu copy NOT equivalent — abort\n", buyer);
      return 1;
    }
    shipped.push_back(to_verilog_string(copy));
  }
  std::printf("shipped %zu distinct fingerprinted copies\n",
              shipped.size());

  // 4. A pirated netlist shows up (buyer 5's copy).
  const std::size_t pirate_source = 5;
  const Netlist recovered =
      read_verilog_string(shipped[pirate_source], golden.library());

  // 5. The vendor extracts the code and matches it in the codebook.
  const FingerprintCode code = extract_code(recovered, golden, locations);
  for (std::size_t buyer = 0; buyer < kBuyers; ++buyer) {
    if (book.code(buyer) == code) {
      std::printf("pirated copy traced to buyer %zu %s\n", buyer,
                  buyer == pirate_source ? "(correct!)" : "(WRONG)");
      return buyer == pirate_source ? 0 : 1;
    }
  }
  std::printf("pirated copy matched no buyer (unexpected)\n");
  return 1;
}
