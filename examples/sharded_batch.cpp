// Sharded multi-process batch: the buyer_batch flow, distributed.
//
// A supervisor splits the buyers into contiguous shards, spawns one
// odcfp_worker process per shard, and hands out shards via a
// checksummed lease journal. Workers heartbeat into per-shard
// write-ahead journals; a worker that crashes or stops making durable
// progress is SIGKILLed, its lease revoked, and its shard re-granted
// to a fresh worker that resumes mid-range. When all shards finish,
// the shard results merge into <outdir>/merged/ — and the merged bytes
// are identical for any shard count, any kill schedule, and any
// uninterrupted single-process run of the same spec.
//
// Kill THIS process at any instant and rerun the same command: the
// lease journal is the supervisor's WAL, the workers die with it
// (PDEATHSIG), and the next incarnation replays, revokes, re-grants,
// and converges.
//
//   ./sharded_batch [circuit] [buyers] [shards] [outdir]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dist/shard.hpp"
#include "dist/supervisor.hpp"

using namespace odcfp;

int main(int argc, char** argv) {
  dist::RunSpec spec;
  spec.circuit = argc > 1 ? argv[1] : "c880";
  spec.num_buyers =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 8;
  const std::size_t shards =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;
  spec.codebook_seed = 2026;
  spec.batch_seed = 7;
  spec.max_delay_overhead = 0.10;
  spec.label = "sharded batch example";

  dist::DistOptions options;
  options.run_dir = argc > 4 ? argv[4] : "sharded_batch_out";
  options.worker_binary = ODCFP_WORKER_BIN;
  options.num_shards = shards;
  options.worker_threads = 1;

  std::printf("%s: %llu buyers across %zu shard(s) in %s\n",
              spec.circuit.c_str(),
              static_cast<unsigned long long>(spec.num_buyers), shards,
              options.run_dir.c_str());

  const dist::DistResult result = dist::run_supervised_batch(spec, options);
  std::printf(
      "status=%s shards=%zu/%zu spawned=%zu killed=%zu regrants=%zu "
      "committed=%zu\n",
      to_string(result.status), result.shards_done, result.shards,
      result.workers_spawned, result.workers_killed, result.regrants,
      result.buyers_committed);
  if (result.status != Status::kOk) {
    std::printf("  %s\n  (rerun the same command to resume)\n",
                result.message.c_str());
    return 1;
  }
  for (const std::string& out : result.merged_outputs) {
    std::printf("  merged: %s\n", out.c_str());
  }
  std::printf("  editions: %zu under %s\n", result.artifacts.size(),
              dist::editions_dir(options.run_dir).c_str());
  return 0;
}
