// Collusion attack walkthrough (paper §III.E).
//
// Three buyers pool their copies of a fingerprinted interrupt controller,
// overwrite every site where their copies differ, and release the result.
// The vendor's tracer still ranks the colluders at the top because the
// sites where all three copies happened to agree retain their shared
// fingerprint bits.
#include <cstdio>

#include "benchgen/benchmarks.hpp"
#include "common/rng.hpp"
#include "fingerprint/codewords.hpp"
#include "fingerprint/location.hpp"

using namespace odcfp;

int main() {
  const Netlist golden = make_benchmark("c432");
  const auto locations = find_locations(golden);
  std::printf("c432-class controller: %zu locations, %zu usable bits\n",
              locations.size(), usable_bits(locations));

  const std::size_t kBuyers = 32;
  const Codebook book(locations, kBuyers, /*seed=*/99);

  const std::vector<std::size_t> colluders = {3, 11, 27};
  Rng rng(5);
  const FingerprintCode attacked =
      collude(book, colluders, CollusionStrategy::kRandomObserved, rng);

  const TraceResult tr = trace_buyer(book, attacked);
  std::printf("\ntracing scores (top 6 of %zu buyers):\n", kBuyers);
  for (std::size_t i = 0; i < 6 && i < tr.ranked.size(); ++i) {
    const std::size_t b = tr.ranked[i];
    const bool guilty = std::find(colluders.begin(), colluders.end(), b) !=
                        colluders.end();
    std::printf("  #%zu: buyer %2zu  match %.1f%%  %s\n", i + 1, b,
                tr.scores[i] * 100, guilty ? "<- colluder" : "");
  }

  // Success: all colluders in the top |colluders| ranks.
  bool all_top = true;
  for (std::size_t i = 0; i < colluders.size(); ++i) {
    if (std::find(colluders.begin(), colluders.end(), tr.ranked[i]) ==
        colluders.end()) {
      all_top = false;
    }
  }
  std::printf("\nall colluders ranked on top: %s\n",
              all_top ? "yes" : "no");
  return 0;
}
