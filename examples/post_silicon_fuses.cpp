// Post-silicon fuse programming (the paper's §I.A two-step flow and §VI
// "using fuses as the connections for the added lines").
//
// One *fused master* netlist is built and "fabricated" — every IC is
// identical, so there is no per-buyer mask cost. After fabrication, each
// sold IC gets its buyer's fuse pattern blown in. Every programming is
// functionally invisible; the fingerprint lives entirely in the fuse
// states, recoverable by inspecting the (copied) netlist.
#include <cstdio>

#include "benchgen/benchmarks.hpp"
#include "equiv/cec.hpp"
#include "fingerprint/codewords.hpp"
#include "fingerprint/fuse_flow.hpp"
#include "io/verilog.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

using namespace odcfp;

int main() {
  // Design + fingerprint infrastructure.
  const Netlist golden = make_benchmark("c1908");
  const auto locations = find_locations(golden);
  std::printf("golden c1908-class SEC/DED: %zu gates\n",
              golden.num_live_gates());

  // Step 1 (pre-silicon): build the fused master once.
  FusedMaster master = build_fused_master(golden, locations);
  std::printf("fused master: %zu gates, %zu fuses — every fabricated die "
              "is identical\n",
              master.netlist.num_live_gates(), master.num_fuses());

  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  std::printf("master overhead vs golden: area +%.1f%%, delay +%.1f%%\n",
              (master.netlist.total_area() / golden.total_area() - 1) *
                  100,
              (sta.critical_delay(master.netlist) /
                   sta.critical_delay(golden) -
               1) * 100);

  if (!random_sim_equal(golden, master.netlist, 128, 1)) {
    std::printf("intact master NOT equivalent — bug\n");
    return 1;
  }
  std::printf("intact master is functionally identical to the golden "
              "design\n\n");

  // Step 2 (post-silicon): program one die per buyer.
  Rng rng(2026);
  for (std::size_t buyer = 0; buyer < 4; ++buyer) {
    FuseVector bits(master.num_fuses());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      bits[i] = rng.next_bool();
    }
    program_fuses(master, bits);
    const bool equiv = random_sim_equal(golden, master.netlist, 64,
                                        10 + buyer);
    // The buyer's die leaks; the vendor reads the fuses back from it.
    const Netlist leaked = read_verilog_string(
        to_verilog_string(master.netlist), golden.library());
    const bool traced = read_fuses_from_copy(leaked, master) == bits;
    std::printf("buyer %zu: programmed %zu fuses, functional: %s, "
                "fuse readback: %s\n",
                buyer, bits.size(), equiv ? "OK" : "FAIL",
                traced ? "OK" : "FAIL");
    if (!equiv || !traced) return 1;
  }
  std::printf("\nall programmed dies compute the golden function; each "
              "carries its buyer's fuse fingerprint\n");
  return 0;
}
