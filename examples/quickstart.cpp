// Quickstart: the paper's Fig. 1 example.
//
// Build F = (A AND B) AND (C OR D), let the library find the fingerprint
// location, embed one bit by feeding Y = (C OR D) into the AND that
// computes X = (A AND B), and prove the two circuits are functionally
// identical while being structurally distinct.
#include <cstdio>

#include "equiv/cec.hpp"
#include "fingerprint/embedder.hpp"
#include "fingerprint/location.hpp"
#include "io/verilog.hpp"
#include "netlist/netlist.hpp"

using namespace odcfp;

int main() {
  // The left circuit of Fig. 1.
  Netlist nl(&default_cell_library(), "fig1");
  const NetId a = nl.add_input("A");
  const NetId b = nl.add_input("B");
  const NetId c = nl.add_input("C");
  const NetId d = nl.add_input("D");
  const GateId g_x = nl.add_gate_kind(CellKind::kAnd, {a, b}, "gx");
  const GateId g_y = nl.add_gate_kind(CellKind::kOr, {c, d}, "gy");
  const GateId g_f = nl.add_gate_kind(
      CellKind::kAnd, {nl.gate(g_x).output, nl.gate(g_y).output}, "gf");
  nl.add_output(nl.gate(g_f).output, "F");
  (void)g_y;

  std::printf("=== golden circuit (paper Fig. 1, left) ===\n%s\n",
              to_verilog_string(nl).c_str());

  // Find fingerprint locations (Definition 1).
  const auto locations = find_locations(nl);
  std::printf("found %zu fingerprint location(s)\n", locations.size());
  for (const auto& loc : locations) {
    std::printf(
        "  primary=%s  Y=%s (pin %d)  trigger=%s (pin %d, value %d)  "
        "sites=%zu  capacity=%.2f bits\n",
        nl.gate(loc.primary).name.c_str(), nl.net(loc.y_net).name.c_str(),
        loc.y_pin, nl.net(loc.trigger_net).name.c_str(), loc.trigger_pin,
        loc.trigger_value, loc.sites.size(), loc.capacity_bits());
  }
  if (locations.empty()) return 1;

  // Embed one fingerprint bit: apply the generic Fig. 4 change.
  Netlist fingerprinted = nl;
  FingerprintEmbedder embedder(fingerprinted, locations);
  embedder.apply(0, 0, /*option=*/1);
  std::printf("\n=== fingerprinted circuit (bit = 1) ===\n%s\n",
              to_verilog_string(fingerprinted).c_str());

  // Prove functional equivalence (exhaustive: only 4 inputs).
  const CecResult cec = verify_equivalence(nl, fingerprinted);
  std::printf("equivalence check (%s): %s\n", cec.method.c_str(),
              cec.equivalent() ? "EQUIVALENT" : "DIFFERENT");

  // The designer recovers the fingerprint by structural comparison.
  const FingerprintCode code =
      extract_code(fingerprinted, nl, locations);
  std::printf("extracted fingerprint bit: %d\n", code[0][0]);
  return cec.equivalent() && code[0][0] == 1 ? 0 : 1;
}
