// Budgeted serving: fingerprinting as an interactive service.
//
// A fingerprint server answering IP-vendor requests cannot afford an
// unbounded heuristic run or SAT proof per request. This example drives
// the whole request flow — parse untrusted BLIF bytes, reduce the
// fingerprint under a delay constraint, verify the result — entirely
// through the budgeted APIs, showing how each layer degrades when its
// wall-clock deadline dies and how the Status taxonomy reports it.
//
// The server side of the story is the structured log: run with
// ODCFP_LOG=server.jsonl to capture one JSONL record per request with
// the outcome, the bits kept, and — on exhaustion — the telemetry span
// the budget died in, the same join key the trace timeline and the
// telemetry tree use.
#include <cstdio>
#include <string>

#include "benchgen/benchmarks.hpp"
#include "common/atomic_io.hpp"
#include "common/log.hpp"
#include "equiv/cec.hpp"
#include "fingerprint/heuristics.hpp"
#include "io/blif.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

using namespace odcfp;

int main() {
  // ---- request admission: untrusted bytes become a typed outcome ----
  const Outcome<SopNetwork> rejected = try_read_blif_string(
      ".model broken\n.inputs a b\n.outputs f\n.names b a\n1 1\n.end\n");
  std::printf("malformed request -> %s: %s\n\n",
              to_string(rejected.status()), rejected.message().c_str());
  log::info("service.request.rejected")
      .field("status", to_string(rejected.status()))
      .field("reason", rejected.message());

  const Netlist golden = make_benchmark("c880");
  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  const Baseline base = Baseline::measure(golden, sta, power);
  const auto locations = find_locations(golden);
  std::printf("serving c880-class unit: %zu gates, %zu locations\n\n",
              golden.num_live_gates(), locations.size());

  // ---- the same reduction request under shrinking deadlines ----
  std::printf("%9s | %9s | %10s | %8s\n", "deadline", "status",
              "bits kept", "delay OH");
  std::printf("--------------------------------------------\n");
  for (const std::int64_t ms : {2000, 200, 50, 5, 0}) {
    Netlist work = golden;
    FingerprintEmbedder embedder(work, locations);
    const Budget budget = Budget::deadline_ms(ms);
    ReactiveOptions opt;
    opt.restarts = 3;
    opt.budget = &budget;
    const HeuristicOutcome out =
        reactive_reduce(embedder, base, sta, power, opt);
    std::printf("%7lld ms | %9s | %10.1f | %6.1f%%",
                static_cast<long long>(ms), to_string(out.status),
                out.bits_kept, out.overheads.delay_ratio * 100);
    // Exhausted runs name the telemetry span where the budget died, so
    // an operator can tell a deadline spent on STA trials from one spent
    // on SAT proofs without re-running under a profiler.
    if (out.status == Status::kExhausted && out.exhausted_at != nullptr &&
        out.exhausted_at[0] != '\0') {
      std::printf("  (budget died in '%s')", out.exhausted_at);
    }
    std::printf("\n");
    log::info("service.request.done")
        .field("deadline_ms", static_cast<std::int64_t>(ms))
        .field("status", to_string(out.status))
        .field("bits_kept", out.bits_kept)
        .field("delay_overhead", out.overheads.delay_ratio)
        .field("died_in",
               out.exhausted_at != nullptr ? out.exhausted_at : "");
  }

  // ---- budgeted verification of the shipped result ----
  Netlist shipped = golden;
  FingerprintEmbedder embedder(shipped, locations);
  {
    const Budget budget = Budget::deadline_ms(50);
    ReactiveOptions opt;
    opt.budget = &budget;
    reactive_reduce(embedder, base, sta, power, opt);
  }
  for (const std::int64_t conflicts : {-1, 2}) {
    Budget budget;
    budget.with_conflicts(conflicts);
    const Outcome<CecResult> cec =
        verify_equivalence_budgeted(golden, shipped, &budget);
    std::printf("\nCEC (conflict budget %lld): %s via %s, confidence %.3f\n",
                static_cast<long long>(conflicts),
                to_string(cec.status()),
                cec.has_value() ? cec.value().method.c_str() : "-",
                cec.confidence());
    if (!cec.message().empty()) {
      std::printf("  %s\n", cec.message().c_str());
    }
    if (cec.status() == Status::kExhausted &&
        cec.exhausted_at()[0] != '\0') {
      std::printf("  budget died in '%s'\n", cec.exhausted_at());
    }
    log::info("service.verify.done")
        .field("conflict_budget", static_cast<std::int64_t>(conflicts))
        .field("status", to_string(cec.status()))
        .field("confidence", cec.confidence());
  }

  // ---- ship the artifact: atomic publish, never a torn file ----
  // write_blif_file goes through atomic_io (temp + fsync + rename), so a
  // customer pulling `shipped.blif` while the service restarts either
  // sees the previous complete edition or this one — never a prefix.
  const std::string shipped_path = "budgeted_service_shipped.blif";
  write_blif_file(shipped_path, shipped);
  std::printf("\nshipped artifact (atomic publish): %s\n",
              shipped_path.c_str());
  log::info("service.shipped").field("path", shipped_path);
  return 0;
}
