// Batch edition fan-out: the IP-vendor flow at distribution scale.
//
// ip_vendor_flow.cpp stamps buyer copies one at a time; this example uses
// the crash-safe batch pipeline instead — one call stamps every buyer of
// a Codebook across a thread pool, records each buyer's lifecycle in a
// write-ahead journal, publishes every edition atomically (temp+rename),
// verifies the batch against the golden netlist, and proves that a
// leaked copy still traces back to its buyer. The results are identical
// for any pool size; the pool only changes how long the batch takes.
//
// Kill this process at ANY instant (Ctrl-C, SIGKILL, OOM) and rerun the
// same command: buyers whose editions are already durable are skipped,
// the rest are stamped bit-identically to an uninterrupted run.
//
//   ./buyer_batch [circuit] [buyers] [threads] [outdir]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchgen/benchmarks.hpp"
#include "common/parallel.hpp"
#include "fingerprint/batch.hpp"
#include "fingerprint/codewords.hpp"

using namespace odcfp;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const std::size_t buyers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 0;  // 0 = all cores
  const std::string outdir = argc > 4 ? argv[4] : "buyer_batch_out";
  const std::string journal_path = outdir + "/journal.odcfp";

  const Netlist golden = make_benchmark(circuit);
  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  const auto locations = find_locations(golden);
  const Codebook book(locations, buyers, /*seed=*/2026);
  std::printf("%s: %zu live gates, %zu locations, %.1f capacity bits\n",
              circuit.c_str(), golden.num_live_gates(), locations.size(),
              total_capacity_bits(locations));

  // Stamp every buyer's edition through the journaled pipeline. The 10%
  // delay constraint tags (but keeps) editions that exceed it; a
  // deadline would make the batch degrade gracefully instead of hanging
  // (skipped editions come back Status::kExhausted and resume later).
  ThreadPool pool(threads);
  ResumeOptions opt;
  opt.batch.pool = &pool;
  opt.batch.max_delay_overhead = 0.10;
  opt.artifact_dir = outdir;
  opt.label = circuit;
  const ResumableBatchResult run =
      batch_fingerprint_resumable(journal_path, golden, book, sta, power,
                                  opt);
  if (run.status == Status::kMalformedInput) {
    std::printf("journal rejected: %s\n", run.message.c_str());
    return 1;
  }
  const BatchResult& batch = run.batch;

  std::printf("\nstamped %zu editions (%d threads), %zu recovered from "
              "journal, %zu within the delay constraint\n\n",
              batch.editions.size(), pool.num_threads(), run.recovered,
              batch.num_ok());
  std::printf("%5s %8s %8s %8s %10s\n", "buyer", "area+", "delay+",
              "power+", "status");
  for (const BuyerEdition& e : batch.editions) {
    if (e.netlist.num_gates() == 0 && e.status == Status::kOk) {
      std::printf("%5zu %8s %8s %8s %10s\n", e.buyer, "-", "-", "-",
                  "recovered");
      continue;
    }
    std::printf("%5zu %7.2f%% %7.2f%% %7.2f%% %10s\n", e.buyer,
                100 * e.overheads.area_ratio, 100 * e.overheads.delay_ratio,
                100 * e.overheads.power_ratio, to_string(e.status));
  }

  // Verify the freshly-stamped editions against the golden netlist in
  // one fan-out (recovered editions live on disk; re-read them if their
  // in-memory netlist is needed).
  BatchCecOptions cec;
  cec.pool = &pool;
  const auto verdicts = batch_verify_equivalence(golden, batch.editions, cec);
  std::size_t equivalent = 0, checked = 0;
  for (std::size_t b = 0; b < verdicts.size(); ++b) {
    if (batch.editions[b].netlist.num_gates() == 0) continue;
    ++checked;
    equivalent += verdicts[b].ok() && verdicts[b].value().equivalent();
  }
  std::printf("\nCEC: %zu/%zu freshly-stamped editions proven equivalent "
              "to golden\n",
              equivalent, checked);

  // A "leaked" copy still traces back to its buyer (use a fresh edition;
  // recovered ones would first be re-read from their artifact).
  const BuyerEdition* leaked = nullptr;
  for (auto it = batch.editions.rbegin(); it != batch.editions.rend();
       ++it) {
    if (it->netlist.num_gates() != 0) {
      leaked = &*it;
      break;
    }
  }
  int rc = 0;
  if (leaked != nullptr) {
    const FingerprintCode recovered_code =
        extract_code(leaked->netlist, golden, locations);
    const TraceResult tr = trace_buyer(book, recovered_code);
    std::printf("leak of buyer %zu's edition traces to buyer %zu "
                "(score %.2f)\n",
                leaked->buyer, tr.ranked[0], tr.scores[0]);
    rc = tr.ranked[0] == leaked->buyer ? 0 : 1;
  } else {
    std::printf("every edition recovered from the journal; artifacts "
                "already verified by checksum\n");
  }

  std::printf("\njournal: %s\n", run.journal_path.c_str());
  std::printf("artifacts: %s/edition_<buyer>.blif\n", outdir.c_str());
  std::printf("kill this process at any point and rerun the same command "
              "to resume.\n");
  return rc;
}
