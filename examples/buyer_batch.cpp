// Batch edition fan-out: the IP-vendor flow at distribution scale.
//
// ip_vendor_flow.cpp stamps buyer copies one at a time; this example uses
// the batch pipeline instead — one call stamps every buyer of a Codebook
// across a thread pool, measures each edition's overheads incrementally,
// verifies all of them against the golden netlist, and proves that a
// leaked copy still traces back to its buyer. The results are identical
// for any pool size; the pool only changes how long the batch takes.
//
//   ./buyer_batch [circuit] [buyers] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchgen/benchmarks.hpp"
#include "common/parallel.hpp"
#include "fingerprint/batch.hpp"
#include "fingerprint/codewords.hpp"

using namespace odcfp;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c880";
  const std::size_t buyers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 0;  // 0 = all cores

  const Netlist golden = make_benchmark(circuit);
  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  const auto locations = find_locations(golden);
  const Codebook book(locations, buyers, /*seed=*/2026);
  std::printf("%s: %zu live gates, %zu locations, %.1f capacity bits\n",
              circuit.c_str(), golden.num_live_gates(), locations.size(),
              total_capacity_bits(locations));

  // Stamp every buyer's edition. The 10%% delay constraint tags (but
  // keeps) editions that exceed it; a deadline would make the batch
  // degrade gracefully instead of hanging (skipped editions come back
  // Status::kExhausted).
  ThreadPool pool(threads);
  BatchOptions opt;
  opt.pool = &pool;
  opt.max_delay_overhead = 0.10;
  const BatchResult batch =
      batch_fingerprint(golden, book, sta, power, opt);

  std::printf("\nstamped %zu editions (%d threads), %zu within the "
              "delay constraint\n\n",
              batch.editions.size(), pool.num_threads(), batch.num_ok());
  std::printf("%5s %8s %8s %8s %8s\n", "buyer", "area+", "delay+",
              "power+", "status");
  for (const BuyerEdition& e : batch.editions) {
    std::printf("%5zu %7.2f%% %7.2f%% %7.2f%% %8s\n", e.buyer,
                100 * e.overheads.area_ratio, 100 * e.overheads.delay_ratio,
                100 * e.overheads.power_ratio, to_string(e.status));
  }

  // Verify the whole batch against the golden netlist in one fan-out.
  BatchCecOptions cec;
  cec.pool = &pool;
  const auto verdicts = batch_verify_equivalence(golden, batch.editions, cec);
  std::size_t equivalent = 0;
  for (const auto& v : verdicts) {
    equivalent += v.ok() && v.value().equivalent();
  }
  std::printf("\nCEC: %zu/%zu editions proven equivalent to golden\n",
              equivalent, verdicts.size());

  // A "leaked" copy of the last buyer still traces back to them.
  const BuyerEdition& leaked = batch.editions.back();
  const FingerprintCode recovered =
      extract_code(leaked.netlist, golden, locations);
  const TraceResult tr = trace_buyer(book, recovered);
  std::printf("leak of buyer %zu's edition traces to buyer %zu "
              "(score %.2f)\n",
              leaked.buyer, tr.ranked[0], tr.scores[0]);
  return tr.ranked[0] == leaked.buyer ? 0 : 1;
}
