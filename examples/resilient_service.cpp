// Crash-safe fingerprint distribution: kill it, resume it, same bytes.
//
// A distribution service stamping hundreds of buyer editions WILL be
// interrupted — deploys, OOM kills, disk hiccups. This example walks the
// recovery story end to end with a deterministic injected disk fault:
//
//   1. a batch run is interrupted: the disk "fails" persistently while
//      the first buyers' artifacts are being published, so their retries
//      exhaust and the run returns Status::kExhausted with a journal
//      that knows exactly which buyers are durable;
//   2. the write-ahead journal is replayed and summarized — this is what
//      an operator (or the resumed process) sees after the crash;
//   3. the same call runs again with a healthy disk: committed buyers
//      are skipped (checksum-verified), the rest are stamped, and every
//      artifact is byte-identical to an uninterrupted reference run.
//
//   ./resilient_service [circuit] [buyers] [outdir]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "common/atomic_io.hpp"
#include "common/fault.hpp"
#include "common/journal.hpp"
#include "fingerprint/batch.hpp"
#include "fingerprint/codewords.hpp"

using namespace odcfp;

int main(int argc, char** argv) {
  const std::string circuit = argc > 1 ? argv[1] : "c432";
  const std::size_t buyers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;
  const std::string outdir = argc > 3 ? argv[3] : "resilient_service_out";
  const std::string journal_path = outdir + "/journal.odcfp";

  const Netlist golden = make_benchmark(circuit);
  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  const auto locations = find_locations(golden);
  const Codebook book(locations, buyers, /*seed=*/2026);

  // Start from scratch so the interruption story replays every run.
  atomic_io::make_dirs(outdir);
  std::remove(journal_path.c_str());
  for (std::size_t b = 0; b < buyers; ++b) {
    std::remove((outdir + "/edition_" + std::to_string(b) + ".blif")
                    .c_str());
  }

  ResumeOptions opt;
  opt.artifact_dir = outdir;
  opt.label = circuit;
  opt.batch.max_delay_overhead = 0;  // keep the status story about I/O
  opt.retry.sleep = false;  // demo: record backoffs, don't wait them out

  // ---- 1. the interrupted run -------------------------------------
  // FailNthIo throws at the atomic_io.write fault point for the first
  // 2 * max_attempts hits: with a serial pool the first two buyers see
  // every publish attempt fail, exhaust their retries, and stay pending.
  // A real crash is harsher (SIGKILL mid-write — tests/crash_recovery_
  // test.cpp does exactly that); the journal contract is the same.
  std::printf("[1] run with a failing disk\n");
  {
    fault::FailNthIo disk_down(
        1, "atomic_io.write",
        static_cast<std::uint64_t>(2 * opt.retry.max_attempts));
    fault::ScopedInjector guard(&disk_down);
    const ResumableBatchResult run = batch_fingerprint_resumable(
        journal_path, golden, book, sta, power, opt);
    std::printf("    status=%s committed=%zu/%zu retries=%zu\n",
                to_string(run.status), run.batch.num_ok(), buyers,
                run.retries);
    if (!run.message.empty()) std::printf("    %s\n", run.message.c_str());
  }

  // ---- 2. what the journal knows after the interruption -----------
  std::printf("\n[2] journal replay: %s\n", journal_path.c_str());
  const Outcome<JournalReplay> replay = read_journal(journal_path);
  if (!replay.ok()) {
    std::printf("    replay failed: %s\n", replay.message().c_str());
    return 1;
  }
  const std::vector<BuyerPhase> phases =
      replay.value().phase_of(buyers);
  std::printf("    header: seed=%llu buyers=%llu label=%s\n",
              static_cast<unsigned long long>(replay.value().header.seed),
              static_cast<unsigned long long>(
                  replay.value().header.num_buyers),
              replay.value().header.label.c_str());
  std::printf("    %zu records, torn tail: %s\n",
              replay.value().entries.size(),
              replay.value().torn_tail ? "yes (will be truncated)" : "no");
  for (std::size_t b = 0; b < buyers; ++b) {
    std::printf("    buyer %zu: %s\n", b, to_string(phases[b]));
  }

  // ---- 3. resume with a healthy disk ------------------------------
  std::printf("\n[3] resume the same command\n");
  const ResumableBatchResult resumed = batch_fingerprint_resumable(
      journal_path, golden, book, sta, power, opt);
  std::printf("    status=%s committed=%zu/%zu recovered=%zu\n",
              to_string(resumed.status), resumed.batch.num_ok(), buyers,
              resumed.recovered);
  if (resumed.status != Status::kOk) {
    std::printf("    resume did not complete: %s\n",
                resumed.message.c_str());
    return 1;
  }

  // Byte-identity: a reference run that was never interrupted produces
  // the same artifacts bit for bit (seeds re-derive from the journal
  // header, publishes are atomic, commits are idempotent).
  const std::string refdir = outdir + "/reference";
  std::remove((refdir + "/journal.odcfp").c_str());
  for (std::size_t b = 0; b < buyers; ++b) {
    std::remove((refdir + "/edition_" + std::to_string(b) + ".blif")
                    .c_str());
  }
  ResumeOptions ref_opt = opt;
  ref_opt.artifact_dir = refdir;
  const ResumableBatchResult reference = batch_fingerprint_resumable(
      refdir + "/journal.odcfp", golden, book, sta, power, ref_opt);
  std::size_t identical = 0;
  for (std::size_t b = 0; b < buyers; ++b) {
    std::string got, want;
    if (atomic_io::read_file(resumed.artifacts[b], &got) &&
        atomic_io::read_file(reference.artifacts[b], &want) &&
        got == want) {
      ++identical;
    }
  }
  std::printf("    %zu/%zu artifacts byte-identical to an uninterrupted "
              "run\n",
              identical, buyers);

  std::printf("\njournal: %s\n", journal_path.c_str());
  std::printf("artifacts: %s/edition_<buyer>.blif\n", outdir.c_str());
  return identical == buyers ? 0 : 1;
}
