// Delay budgeting: what the overhead heuristics buy you (paper §III.D).
//
// Fully fingerprinting a circuit costs serious delay (the paper's Table II
// averages 64% overhead). This example sweeps delay budgets on the
// c1908-class SEC/DED unit and shows, for both the reactive and proactive
// heuristics, how much fingerprint capacity survives at each budget —
// reproducing the trade-off of Table III / Fig. 7 on one circuit.
#include <cstdio>

#include "benchgen/benchmarks.hpp"
#include "fingerprint/embedder.hpp"
#include "fingerprint/heuristics.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

using namespace odcfp;

int main() {
  const Netlist golden = make_benchmark("c1908");
  const StaticTimingAnalyzer sta;
  const PowerAnalyzer power;
  const Baseline base = Baseline::measure(golden, sta, power);
  const auto locations = find_locations(golden);

  std::printf("c1908-class SEC/DED: %zu gates, delay %.2f, %zu locations, "
              "%.1f bits capacity\n\n",
              golden.num_live_gates(), base.delay, locations.size(),
              total_capacity_bits(locations));
  std::printf("%8s | %16s | %16s\n", "budget", "reactive bits(OH)",
              "proactive bits(OH)");
  std::printf("---------------------------------------------------\n");

  for (double budget : {0.50, 0.20, 0.10, 0.05, 0.02, 0.01}) {
    Netlist w1 = golden;
    FingerprintEmbedder e1(w1, locations);
    ReactiveOptions ropt;
    ropt.max_delay_overhead = budget;
    ropt.restarts = 2;
    const HeuristicOutcome r = reactive_reduce(e1, base, sta, power, ropt);

    Netlist w2 = golden;
    FingerprintEmbedder e2(w2, locations);
    ProactiveOptions popt;
    popt.max_delay_overhead = budget;
    const HeuristicOutcome p = proactive_insert(e2, base, sta, power, popt);

    std::printf("%7.0f%% | %8.1f (%4.1f%%) | %8.1f (%4.1f%%)\n",
                budget * 100, r.bits_kept,
                r.overheads.delay_ratio * 100, p.bits_kept,
                p.overheads.delay_ratio * 100);
  }
  return 0;
}
