// Run monitor for a sharded fingerprinting run dir (src/dist/).
//
//   odcfp_status RUN_DIR            one-shot text table
//   odcfp_status RUN_DIR --json     one-shot JSON (render_run_status_json)
//   odcfp_status RUN_DIR --watch    poll until the run's merge record
//                                   lands (exit 0) — ^C to stop earlier
//   ... --watch --watch-timeout MS  give up after MS milliseconds of
//                                   watching: exit 3 (distinct from the
//                                   usage/missing-dir exit 2) with a
//                                   diagnostic naming the run's last
//                                   observed state, so CI jobs watching
//                                   a wedged run fail loudly instead of
//                                   hanging until the job timeout.
//
// The status is composed from the run dir's primary sources (run.spec,
// lease journal, shard journals, status snapshots), never from
// run_status.json, so the monitor works identically on a live run, a
// crashed one, and a finished one — including a run dir whose
// supervisor is long dead.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/atomic_io.hpp"
#include "dist/status.hpp"

namespace {

using namespace odcfp;

struct Args {
  std::string run_dir;
  bool json = false;
  bool watch = false;
  std::int64_t interval_ms = 500;
  std::int64_t stall_ms = 5'000;
  std::int64_t watch_timeout_ms = 0;  // 0 = watch forever
};

/// Exit code when --watch-timeout expires before the run finishes.
/// Distinct from 2 (usage / missing run dir) so callers can tell "I
/// asked the wrong question" from "the run never finished".
constexpr int kExitWatchTimeout = 3;

int usage() {
  std::fprintf(stderr,
               "usage: odcfp_status RUN_DIR [--json] [--watch]\n"
               "                    [--interval-ms N] [--stall-ms N]\n"
               "                    [--watch-timeout MS]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      args->json = true;
    } else if (flag == "--watch") {
      args->watch = true;
    } else if (flag == "--interval-ms" || flag == "--stall-ms" ||
               flag == "--watch-timeout") {
      if (i + 1 >= argc) return false;
      const std::int64_t v = std::strtoll(argv[++i], nullptr, 10);
      if (v <= 0) return false;
      if (flag == "--interval-ms") args->interval_ms = v;
      else if (flag == "--stall-ms") args->stall_ms = v;
      else args->watch_timeout_ms = v;
    } else if (!flag.empty() && flag[0] == '-') {
      return false;
    } else if (args->run_dir.empty()) {
      args->run_dir = flag;
    } else {
      return false;
    }
  }
  return !args->run_dir.empty();
}

void render_once(const Args& args, const dist::RunStatusView& view) {
  if (args.json) {
    std::fputs(dist::render_run_status_json(view).c_str(), stdout);
  } else {
    std::fputs(dist::render_run_status_table(view).c_str(), stdout);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();
  if (!atomic_io::exists(args.run_dir)) {
    std::fprintf(stderr, "odcfp_status: run dir '%s' does not exist\n",
                 args.run_dir.c_str());
    return 2;
  }

  if (!args.watch) {
    render_once(args,
                dist::inspect_run_dir(args.run_dir, args.stall_ms));
    return 0;
  }

  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  const auto watch_start = std::chrono::steady_clock::now();
  for (;;) {
    const dist::RunStatusView view =
        dist::inspect_run_dir(args.run_dir, args.stall_ms);
    if (tty && !args.json) std::fputs("\033[H\033[2J", stdout);
    render_once(args, view);
    if (view.state == "done") return 0;
    if (args.watch_timeout_ms > 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - watch_start)
              .count();
      if (elapsed >= args.watch_timeout_ms) {
        std::fprintf(stderr,
                     "odcfp_status: watch timed out after %lld ms; run "
                     "'%s' is still in state '%s' (not done)\n",
                     static_cast<long long>(args.watch_timeout_ms),
                     args.run_dir.c_str(), view.state.c_str());
        return kExitWatchTimeout;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(args.interval_ms));
  }
}
