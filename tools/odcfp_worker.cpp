// Shard worker entrypoint for the distributed supervisor (src/dist/).
//
// The supervisor spawns one of these per shard lease:
//
//   odcfp_worker --run-dir DIR --shard I --begin B --end E --epoch N
//                --threads T --heartbeat-ms MS [--trace PATH]
//                [chaos flags]
//
// The worker reads DIR/run.spec, deterministically reconstructs the
// golden netlist and codebook (make_benchmark + find_locations +
// Codebook — no netlist bytes cross the process boundary), and runs
// batch_fingerprint_resumable over buyers [B, E) with the shard's
// journal DIR/shard_I.journal, publishing editions into DIR/editions/.
// Exit codes follow dist::kWorkerExit* (supervisor.hpp).
//
// --trace PATH arms run-scoped trace capture: the worker records its
// timeline (with shard/epoch identity and its clock anchor in the
// file's otherData) and atomically rewrites PATH on every heartbeat, so
// a SIGKILL — including the supervisor's own wedge-kill — loses at most
// one heartbeat interval of events. src/dist/stitch.* merges these into
// the run's cross-process timeline.
//
// Chaos flags (test-only; in-process fault injectors cannot cross an
// exec boundary, so the kill schedule rides the command line):
//
//   --chaos-signal kill|stop   raise SIGKILL (crash) or SIGSTOP (wedge:
//                              every thread freezes, heartbeats stop,
//                              the supervisor's deadline must catch it)
//   --chaos-site PREFIX        at the nth hit of a fault site with this
//   --chaos-nth N              prefix (1-based)
//   --chaos-epoch N            but only when --epoch == N, so a respawn
//                              at the next epoch runs clean and recovery
//                              can be asserted deterministically.
//   --chaos-shard S            and only when --shard == S (default: any
//                              shard), so a fleet-wide flag set can still
//                              kill exactly one worker.
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchgen/benchmarks.hpp"
#include "common/clock.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/parallel.hpp"
#include "common/telemetry.hpp"
#include "common/trace.hpp"
#include "dist/shard.hpp"
#include "dist/status.hpp"
#include "dist/supervisor.hpp"
#include "fingerprint/batch.hpp"
#include "fingerprint/codewords.hpp"
#include "fingerprint/location.hpp"
#include "power/power.hpp"
#include "timing/sta.hpp"

namespace {

using namespace odcfp;

struct Args {
  std::string run_dir;
  std::size_t shard = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::uint64_t epoch = 1;
  int threads = 1;
  std::int64_t heartbeat_ms = 0;
  std::string trace_path;    // run-scoped trace capture destination
  std::string chaos_signal;  // "", "kill", or "stop"
  std::string chaos_site;
  std::uint64_t chaos_nth = 1;
  std::uint64_t chaos_epoch = 1;
  std::uint64_t chaos_shard = UINT64_MAX;  // any shard
};

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "odcfp_worker: %s needs a value\n",
                   flag.c_str());
      return false;
    }
    const std::string value = argv[++i];
    if (flag == "--run-dir") args->run_dir = value;
    else if (flag == "--shard") args->shard = std::stoull(value);
    else if (flag == "--begin") args->begin = std::stoull(value);
    else if (flag == "--end") args->end = std::stoull(value);
    else if (flag == "--epoch") args->epoch = std::stoull(value);
    else if (flag == "--threads") args->threads = std::stoi(value);
    else if (flag == "--heartbeat-ms") args->heartbeat_ms = std::stoll(value);
    else if (flag == "--trace") args->trace_path = value;
    else if (flag == "--chaos-signal") args->chaos_signal = value;
    else if (flag == "--chaos-site") args->chaos_site = value;
    else if (flag == "--chaos-nth") args->chaos_nth = std::stoull(value);
    else if (flag == "--chaos-epoch") args->chaos_epoch = std::stoull(value);
    else if (flag == "--chaos-shard") args->chaos_shard = std::stoull(value);
    else {
      std::fprintf(stderr, "odcfp_worker: unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return !args->run_dir.empty();
}

/// Raises `signo` at the nth hit of a matching fault site. SIGKILL dies
/// on the spot (crash shape); SIGSTOP freezes the whole process —
/// including the heartbeat thread — until someone resumes or kills it
/// (wedge shape).
struct SignalAtNth : fault::Injector {
  SignalAtNth(std::uint64_t nth, std::string prefix, int signo)
      : nth_(nth), prefix_(std::move(prefix)), signo_(signo) {}

  void on_point(const char* site) override {
    if (std::strncmp(site, prefix_.c_str(), prefix_.size()) != 0) return;
    if (hits_.fetch_add(1, std::memory_order_relaxed) + 1 == nth_) {
      ::raise(signo_);
    }
  }

  std::uint64_t nth_;
  std::string prefix_;
  int signo_;
  std::atomic<std::uint64_t> hits_{0};
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) {
    return dist::kWorkerExitMalformed;
  }

  Outcome<dist::RunSpec> spec_read =
      dist::read_run_spec(dist::run_spec_path(args.run_dir));
  if (!spec_read.ok()) {
    std::fprintf(stderr, "odcfp_worker: %s\n",
                 spec_read.message().c_str());
    return dist::kWorkerExitMalformed;
  }
  const dist::RunSpec spec = spec_read.value();

  if (!args.trace_path.empty()) {
    // Run-scoped capture: record from before the first fault site, arm
    // the per-(shard, epoch) file, and make it durable immediately so
    // even a worker killed before its first heartbeat leaves a trace
    // carrying its clock anchor and identity metadata.
    trace::start();
    const std::string label = "shard-" + std::to_string(args.shard);
    trace::set_process_label(label.c_str());
    trace::set_thread_name("worker-main");
    trace::set_meta("role", "worker");
    trace::set_meta("run_label", spec.label);
    trace::set_meta("circuit", spec.circuit);
    trace::set_meta("shard", std::to_string(args.shard));
    trace::set_meta("epoch", std::to_string(args.epoch));
    trace::arm_file(args.trace_path);
    trace::flush();
  }

  SignalAtNth chaos(args.chaos_nth, args.chaos_site,
                    args.chaos_signal == "stop" ? SIGSTOP : SIGKILL);
  fault::ScopedInjector scoped(
      !args.chaos_signal.empty() && args.epoch == args.chaos_epoch &&
              (args.chaos_shard == UINT64_MAX ||
               args.chaos_shard == args.shard)
          ? &chaos
          : nullptr);

  try {
    const Netlist golden = make_benchmark(spec.circuit);
    const std::vector<FingerprintLocation> locs = find_locations(golden);
    const Codebook book(locs, spec.num_buyers, spec.codebook_seed);
    const StaticTimingAnalyzer sta;
    const PowerAnalyzer power;
    ThreadPool pool(args.threads);

    ResumeOptions options;
    options.artifact_dir = dist::editions_dir(args.run_dir);
    options.label = spec.label;
    options.batch.seed = spec.batch_seed;
    options.batch.max_delay_overhead = spec.max_delay_overhead;
    options.batch.pool = args.threads > 1 ? &pool : nullptr;
    options.range_begin = args.begin;
    options.range_end = args.end;
    options.heartbeat_interval_ms = args.heartbeat_ms;
    // Status snapshots: one atomic single-record publish per heartbeat
    // (plus the final report), carrying progress, rate, and the
    // edition-latency histogram recorded so far by this process.
    const std::string snap_path =
        dist::status_snapshot_path(args.run_dir, args.shard);
    options.progress = [&](const BatchProgress& p) {
      dist::ShardStatus st;
      st.shard = args.shard;
      st.epoch = args.epoch;
      st.pid = static_cast<std::uint64_t>(::getpid());
      st.range_begin = p.range_begin;
      st.range_end = p.range_end;
      st.committed = p.committed;
      st.recovered = p.recovered;
      st.elapsed_ms = static_cast<std::uint64_t>(p.elapsed_ms);
      const std::uint64_t stamped = p.committed - p.recovered;
      st.eps_milli = p.elapsed_ms > 0
                         ? stamped * 1'000'000 /
                               static_cast<std::uint64_t>(p.elapsed_ms)
                         : 0;
      st.done = p.final ? 1 : 0;
      st.wall_ns = clocks::anchored_wall_now_ns();
      st.edition_ns =
          telemetry::snapshot().hist_total("batch.edition_ns");
      dist::write_status_snapshot(snap_path, st);
      // Heartbeat-cadence durability for the trace: the progress
      // callback fires from the heartbeat ticker, so a SIGKILLed worker
      // loses at most one interval of its timeline.
      if (trace::armed()) trace::flush();
    };

    const ResumableBatchResult rr = batch_fingerprint_resumable(
        dist::shard_journal_path(args.run_dir, args.shard), golden, book,
        sta, power, options);
    switch (rr.status) {
      case Status::kOk:
        return dist::kWorkerExitOk;
      case Status::kExhausted:
        return dist::kWorkerExitResumable;
      case Status::kMalformedInput:
        std::fprintf(stderr, "odcfp_worker: %s\n", rr.message.c_str());
        return dist::kWorkerExitMalformed;
      default:
        std::fprintf(stderr, "odcfp_worker: %s\n", rr.message.c_str());
        return dist::kWorkerExitInfeasible;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "odcfp_worker: %s\n", e.what());
    return dist::kWorkerExitMalformed;
  }
}
