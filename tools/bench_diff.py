#!/usr/bin/env python3
"""Diff two sets of BENCH_<name>.json artifacts and gate on regressions.

Usage:
  bench_diff.py BASELINE CURRENT [options]
  bench_diff.py --baseline bench/baselines CURRENT [options]

BASELINE and CURRENT are each either a directory containing
BENCH_*.json files (e.g. bench/baselines and a fresh bench-artifacts
dir) or a single artifact file. Artifacts are paired by their "bench"
name.

Stdlib-only on purpose, like validate_bench_json.py: the CI gate must
not need a pip install.

What gates and what doesn't
---------------------------
The point of this tool is a perf-regression *trajectory* gate that is
not flaky. Wall-clock numbers vary run to run and machine to machine,
so they can never hard-fail. Telemetry counters (SAT conflicts, BDD
node counts, window sizes, editions stamped, ...) are deterministic
functions of the input in the single-threaded smoke benches, so a
counter that moves is a real behavioural change — that is what gates.

  * telemetry counters and span hit-counts: HARD gate. An increase
    beyond --counter-tolerance (relative, default 0.10) fails the run.
    A decrease is reported as an improvement (and with
    --fail-on-decrease also fails, so a baseline refresh is forced
    instead of silently banking the win).
  * telemetry histograms (schema v3 "hists"): the count, sum, and
    per-bucket counts of value histograms HARD gate exactly like
    counters — their bucket vectors are deterministic multisets.
    Histograms whose name is time-like (batch.edition_ns, cec.check_ns,
    ...) are wall-clock latency and are never compared.
  * row metrics (area_overhead, capacity_bits, ...): SOFT gate. Moves
    beyond --metric-tolerance (default 0.25) print a WARN but do not
    change the exit status.
  * time-like values (total_ns, *_ms, *wall*, *per_sec*, throughput,
    ...): never compared at all.
  * host metadata: never compared (provenance labels only).
  * null metrics (non-finite measurements): skipped.

Missing benches / rows / counters on either side print a WARN; with
--fail-on-missing they fail the run (new counters appearing in CURRENT
are always fine — instrumentation grows).

Exit status: 0 clean, 1 regression (or --fail-on-* violation),
2 usage or I/O error.
"""

import argparse
import json
import os
import re
import sys

# Substrings that mark a metric as nondeterministic timing; such keys
# are informational and must never participate in the gate.
_TIME_LIKE = re.compile(
    r"(_ns$|_ms$|_us$|_s$|time|wall|seconds|per_sec|throughput|rate)",
    re.IGNORECASE)


def is_time_like(key):
    return _TIME_LIKE.search(key) is not None


def validate_report_shape(path, report):
    """Rejects structurally malformed artifacts with a clear message.

    A truncated or hand-edited baseline can be valid JSON of the wrong
    shape (a list, a bare string, rows that are not objects, ...); every
    such case must exit 2 with the offending path named, never escape as
    an AttributeError traceback mid-diff.
    """
    if not isinstance(report, dict):
        raise ValueError(
            f"{path}: top-level JSON is {type(report).__name__}, "
            f"expected an object (truncated or malformed artifact?)")
    rows = report.get("rows", [])
    if not isinstance(rows, list):
        raise ValueError(f"{path}: 'rows' must be a list")
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: rows[{i}] is not an object")
        if not isinstance(row.get("metrics", {}), dict):
            raise ValueError(f"{path}: rows[{i}].metrics is not an object")
    telemetry = report.get("telemetry")
    if telemetry is not None:
        _validate_telemetry_node(path, "telemetry", telemetry)


def _validate_telemetry_node(path, where, node):
    if not isinstance(node, dict):
        raise ValueError(f"{path}: {where} is not an object")
    if not isinstance(node.get("counters", {}), dict):
        raise ValueError(f"{path}: {where}.counters is not an object")
    children = node.get("children", {})
    if not isinstance(children, dict):
        raise ValueError(f"{path}: {where}.children is not an object")
    hists = node.get("hists", {})
    if not isinstance(hists, dict):
        raise ValueError(f"{path}: {where}.hists is not an object")
    for name, hist in hists.items():
        if not isinstance(hist, dict):
            raise ValueError(
                f"{path}: {where}.hists[{name!r}] is not an object")
    for name, sub in children.items():
        _validate_telemetry_node(path, f"{where}.children[{name!r}]", sub)


def load_artifacts(path):
    """Returns {bench_name: report_dict} for a file or directory."""
    paths = []
    if os.path.isdir(path):
        for entry in sorted(os.listdir(path)):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                paths.append(os.path.join(path, entry))
    elif os.path.isfile(path):
        paths.append(path)
    else:
        raise OSError(f"{path}: not a file or directory")
    out = {}
    for p in paths:
        with open(p, encoding="utf-8") as f:
            try:
                report = json.load(f)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{p}: malformed JSON ({exc}) — truncated artifact "
                    f"or interrupted bench run?") from exc
        validate_report_shape(p, report)
        name = report.get("bench")
        if not isinstance(name, str) or not name:
            raise ValueError(f"{p}: missing 'bench' name")
        out[name] = report
    return out


def flatten_telemetry(node, prefix, out):
    """telemetry tree -> {"<path>#<counter>": int, "<path>@count": int,
    "<path>%<hist>.count/.sum/.b<i>": int}.

    total_ns is wall-clock and deliberately not flattened; so are
    histograms with time-like names (edition_ns, check_ns, ...) — their
    bucket shape depends on the machine, not the inputs.
    """
    out[f"{prefix}@count"] = node.get("count", 0)
    for key, value in sorted(node.get("counters", {}).items()):
        out[f"{prefix}#{key}"] = value
    for name, hist in sorted(node.get("hists", {}).items()):
        if is_time_like(name):
            continue
        out[f"{prefix}%{name}.count"] = hist.get("count", 0)
        out[f"{prefix}%{name}.sum"] = hist.get("sum", 0)
        for i, bucket in enumerate(hist.get("buckets", [])):
            out[f"{prefix}%{name}.b{i}"] = bucket
    for child, sub in sorted(node.get("children", {}).items()):
        flatten_telemetry(sub, f"{prefix}/{child}", out)


def counters_of(report):
    out = {}
    telemetry = report.get("telemetry")
    if isinstance(telemetry, dict):
        flatten_telemetry(telemetry, "", out)
    return out


def metrics_of(report):
    """{"<row>.<metric>": float} over finite, non-time-like metrics."""
    out = {}
    for row in report.get("rows", []):
        name = row.get("name", "?")
        for key, value in sorted(row.get("metrics", {}).items()):
            if value is None or is_time_like(key):
                continue
            out[f"{name}.{key}"] = value
    return out


def rel_delta(base, cur):
    """Relative change with a floor of 1 on the denominator, so small
    integer counters (0 -> 1) still register as a 100% move instead of
    dividing by zero."""
    return (cur - base) / max(abs(base), 1.0)


class Gate:
    def __init__(self):
        self.regressions = []
        self.improvements = []
        self.warnings = []

    def report(self):
        for msg in self.warnings:
            print(f"WARN  {msg}")
        for msg in self.improvements:
            print(f"BETTER {msg}")
        for msg in self.regressions:
            print(f"FAIL  {msg}")


def diff_bench(name, base, cur, opts, gate):
    base_counters = counters_of(base)
    cur_counters = counters_of(cur)
    compared = 0
    for key in sorted(base_counters):
        if key not in cur_counters:
            msg = f"{name}: counter {key!r} disappeared"
            (gate.regressions if opts.fail_on_missing
             else gate.warnings).append(msg)
            continue
        b, c = base_counters[key], cur_counters[key]
        compared += 1
        if b == c:
            continue
        delta = rel_delta(b, c)
        msg = (f"{name}: counter {key} {b} -> {c} "
               f"({delta:+.1%}, tolerance {opts.counter_tolerance:.0%})")
        if delta > opts.counter_tolerance:
            gate.regressions.append(msg)
        elif delta < -opts.counter_tolerance:
            (gate.regressions if opts.fail_on_decrease
             else gate.improvements).append(msg)
    for key in sorted(set(cur_counters) - set(base_counters)):
        gate.warnings.append(
            f"{name}: new counter {key} = {cur_counters[key]} "
            f"(not in baseline; refresh bench/baselines to start gating it)")

    base_metrics = metrics_of(base)
    cur_metrics = metrics_of(cur)
    for key in sorted(base_metrics):
        if key not in cur_metrics:
            msg = f"{name}: metric {key!r} disappeared"
            (gate.regressions if opts.fail_on_missing
             else gate.warnings).append(msg)
            continue
        b, c = base_metrics[key], cur_metrics[key]
        compared += 1
        if b == c:
            continue
        delta = rel_delta(b, c)
        if abs(delta) > opts.metric_tolerance:
            gate.warnings.append(
                f"{name}: metric {key} {b:g} -> {c:g} ({delta:+.1%}, "
                f"soft tolerance {opts.metric_tolerance:.0%})")
    return compared


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="+", metavar="BASELINE CURRENT",
                        help="baseline then current (each a dir or a "
                             "BENCH_*.json file); with --baseline, just "
                             "the current set")
    parser.add_argument("--baseline", metavar="DIR",
                        help="baseline dir/file, as a flag instead of "
                             "the first positional")
    parser.add_argument("--counter-tolerance", type=float, default=0.10,
                        metavar="FRAC",
                        help="relative increase a telemetry counter may "
                             "show before hard-failing (default 0.10)")
    parser.add_argument("--metric-tolerance", type=float, default=0.25,
                        metavar="FRAC",
                        help="relative move a row metric may show before "
                             "a soft WARN (default 0.25)")
    parser.add_argument("--fail-on-decrease", action="store_true",
                        help="also fail when a counter improves, forcing "
                             "a baseline refresh instead of drift")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="fail when a baseline bench, row metric, or "
                             "counter is absent from the current run")
    opts = parser.parse_args(argv)
    if opts.baseline is not None and len(opts.paths) == 1:
        baseline_path, current_path = opts.baseline, opts.paths[0]
    elif opts.baseline is None and len(opts.paths) == 2:
        baseline_path, current_path = opts.paths
    else:
        parser.error("expected BASELINE CURRENT, or --baseline DIR CURRENT")

    try:
        base_set = load_artifacts(baseline_path)
        cur_set = load_artifacts(current_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return 2
    if not base_set:
        print(f"bench_diff: no BENCH_*.json under {baseline_path}",
              file=sys.stderr)
        return 2

    gate = Gate()
    compared = 0
    for name in sorted(base_set):
        if name not in cur_set:
            msg = f"bench {name!r} missing from {current_path}"
            (gate.regressions if opts.fail_on_missing
             else gate.warnings).append(msg)
            continue
        compared += diff_bench(name, base_set[name], cur_set[name],
                               opts, gate)
    for name in sorted(set(cur_set) - set(base_set)):
        gate.warnings.append(f"bench {name!r} has no baseline")

    gate.report()
    print(f"bench_diff: {compared} gated values across "
          f"{len(set(base_set) & set(cur_set))} bench(es); "
          f"{len(gate.regressions)} regression(s), "
          f"{len(gate.improvements)} improvement(s), "
          f"{len(gate.warnings)} warning(s)")
    return 1 if gate.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
