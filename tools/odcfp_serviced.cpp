// Fingerprinting service daemon.
//
// Runs a service::Server in the foreground until SIGTERM/SIGINT, then
// stops gracefully (in-flight requests keep their admitted records and
// become the next daemon's replay set). Prints one machine-parsable
// ready line once the socket is listening:
//
//   odcfp_serviced ready socket=<path> state_dir=<path> pid=<pid>
//
// Tenant quotas are passed as repeatable flags:
//   --tenant NAME:CAPACITY:REFILL_PER_SEC:PRIORITY
// Tenants not listed fall back to --default-capacity/--default-refill.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH --state-dir DIR [options]\n"
      "  --executors N            executor threads (default 1; 0 = "
      "accept-only)\n"
      "  --pool-threads N         shared ThreadPool size (default 1)\n"
      "  --queue-capacity N       bounded queue size (default 64)\n"
      "  --default-deadline-ms MS deadline for requests without one\n"
      "  --max-delay-overhead R  per-edition delay constraint (0 = off)\n"
      "  --no-queue-timeout-shed  run late queued requests instead of "
      "shedding\n"
      "  --tenant NAME:CAP:REFILL:PRIO   per-tenant quota (repeatable)\n"
      "  --default-capacity N     token capacity for unlisted tenants\n"
      "  --default-refill R      tokens/sec for unlisted tenants\n",
      argv0);
}

bool parse_tenant(const std::string& text,
                  std::map<std::string, odcfp::service::TenantQuota>* out) {
  // NAME:CAP:REFILL:PRIO
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ':') {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (parts.size() != 4 || parts[0].empty()) return false;
  odcfp::service::TenantQuota quota;
  try {
    quota.bucket.capacity = std::stod(parts[1]);
    quota.bucket.refill_per_sec = std::stod(parts[2]);
    quota.priority = std::stoi(parts[3]);
  } catch (const std::exception&) {
    return false;
  }
  (*out)[parts[0]] = quota;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  odcfp::service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odcfp_serviced: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      config.socket_path = next("--socket");
    } else if (arg == "--state-dir") {
      config.state_dir = next("--state-dir");
    } else if (arg == "--executors") {
      config.num_executors = std::atoi(next("--executors"));
    } else if (arg == "--pool-threads") {
      config.pool_threads = std::atoi(next("--pool-threads"));
    } else if (arg == "--queue-capacity") {
      config.queue_capacity =
          static_cast<std::size_t>(std::atoll(next("--queue-capacity")));
    } else if (arg == "--default-deadline-ms") {
      config.default_deadline_ms = static_cast<std::uint64_t>(
          std::atoll(next("--default-deadline-ms")));
    } else if (arg == "--max-delay-overhead") {
      config.max_delay_overhead = std::atof(next("--max-delay-overhead"));
    } else if (arg == "--no-queue-timeout-shed") {
      config.queue_timeout_sheds = false;
    } else if (arg == "--tenant") {
      if (!parse_tenant(next("--tenant"), &config.tenants)) {
        std::fprintf(stderr,
                     "odcfp_serviced: --tenant expects "
                     "NAME:CAP:REFILL:PRIO\n");
        return 2;
      }
    } else if (arg == "--default-capacity") {
      config.default_quota.bucket.capacity =
          std::atof(next("--default-capacity"));
    } else if (arg == "--default-refill") {
      config.default_quota.bucket.refill_per_sec =
          std::atof(next("--default-refill"));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "odcfp_serviced: unknown flag '%s'\n",
                   arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (config.socket_path.empty() || config.state_dir.empty()) {
    usage(argv[0]);
    return 2;
  }

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  auto server = odcfp::service::Server::start(config);
  if (!server.ok()) {
    std::fprintf(stderr, "odcfp_serviced: start failed: %s\n",
                 server.message().c_str());
    return 1;
  }
  std::printf("odcfp_serviced ready socket=%s state_dir=%s pid=%d\n",
              config.socket_path.c_str(), config.state_dir.c_str(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "odcfp_serviced: stopping\n");
  server.value()->stop();
  return 0;
}
