// Command-line client for the fingerprinting service daemon.
//
// usage: odcfp_client --socket PATH <command> [args]
//   ping
//   submit --tenant T --circuit C --buyers N [--seed S]
//          [--deadline-ms MS] [--verify] [--label L]
//   status --id N
//   wait --id N [--timeout-ms MS]
//   stats
//
// Exit codes: 0 success; 1 transport/daemon error; 2 usage;
// 4 request rejected by admission control (reason on stdout).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/client.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH <command> [args]\n"
      "  ping\n"
      "  submit --tenant T --circuit C --buyers N [--seed S]\n"
      "         [--deadline-ms MS] [--verify] [--label L]\n"
      "  status --id N\n"
      "  wait --id N [--timeout-ms MS]\n"
      "  stats\n"
      "exit: 0 ok, 1 daemon/transport error, 2 usage, 4 rejected\n",
      argv0);
}

void print_status(const odcfp::service::StatusReply& st) {
  std::printf("state=%s terminal=%d committed=%llu crc=%08x detail=%s\n",
              st.state.c_str(), st.terminal ? 1 : 0,
              static_cast<unsigned long long>(st.committed),
              st.artifact_crc, st.detail.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  odcfp::service::RequestSpec spec;
  std::uint64_t id = 0;
  bool have_id = false;
  std::int64_t timeout_ms = 60'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "odcfp_client: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--tenant") {
      spec.tenant = next("--tenant");
    } else if (arg == "--circuit") {
      spec.circuit = next("--circuit");
    } else if (arg == "--buyers") {
      spec.buyers =
          static_cast<std::uint64_t>(std::atoll(next("--buyers")));
    } else if (arg == "--seed") {
      spec.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--deadline-ms") {
      spec.deadline_ms =
          static_cast<std::uint64_t>(std::atoll(next("--deadline-ms")));
    } else if (arg == "--verify") {
      spec.verify = true;
    } else if (arg == "--label") {
      spec.label = next("--label");
    } else if (arg == "--id") {
      id = static_cast<std::uint64_t>(std::atoll(next("--id")));
      have_id = true;
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atoll(next("--timeout-ms"));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "odcfp_client: unknown flag '%s'\n",
                   arg.c_str());
      return 2;
    } else if (command.empty()) {
      command = arg;
    } else {
      std::fprintf(stderr, "odcfp_client: extra argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty() || command.empty()) {
    usage(argv[0]);
    return 2;
  }

  odcfp::service::Client client(socket_path);

  if (command == "ping") {
    if (client.ping()) {
      std::printf("pong\n");
      return 0;
    }
    std::fprintf(stderr, "odcfp_client: no daemon at %s\n",
                 socket_path.c_str());
    return 1;
  }
  if (command == "submit") {
    if (spec.tenant.empty() || spec.circuit.empty() || spec.buyers == 0) {
      std::fprintf(stderr,
                   "odcfp_client: submit needs --tenant, --circuit, "
                   "--buyers\n");
      return 2;
    }
    auto reply = client.submit(spec);
    if (!reply.ok()) {
      std::fprintf(stderr, "odcfp_client: submit failed: %s\n",
                   reply.message().c_str());
      return 1;
    }
    if (!reply.value().accepted) {
      std::printf("rejected reason=%s detail=%s\n",
                  odcfp::service::to_string(reply.value().reason),
                  reply.value().detail.c_str());
      return 4;
    }
    std::printf("accepted id=%llu\n",
                static_cast<unsigned long long>(reply.value().id));
    return 0;
  }
  if (command == "status" || command == "wait") {
    if (!have_id) {
      std::fprintf(stderr, "odcfp_client: %s needs --id\n",
                   command.c_str());
      return 2;
    }
    auto reply = command == "status" ? client.status(id)
                                     : client.wait(id, timeout_ms);
    if (!reply.ok()) {
      std::fprintf(stderr, "odcfp_client: %s failed: %s\n",
                   command.c_str(), reply.message().c_str());
      return 1;
    }
    print_status(reply.value());
    return 0;
  }
  if (command == "stats") {
    auto reply = client.stats();
    if (!reply.ok()) {
      std::fprintf(stderr, "odcfp_client: stats failed: %s\n",
                   reply.message().c_str());
      return 1;
    }
    const auto& s = reply.value();
    std::printf(
        "admitted=%llu replayed=%llu completed=%llu degraded=%llu "
        "failed=%llu shed_overloaded=%llu shed_quota=%llu "
        "shed_timeout=%llu rejected_malformed=%llu queue_depth=%llu\n",
        static_cast<unsigned long long>(s.admitted),
        static_cast<unsigned long long>(s.replayed),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.degraded),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.shed_overloaded),
        static_cast<unsigned long long>(s.shed_quota),
        static_cast<unsigned long long>(s.shed_timeout),
        static_cast<unsigned long long>(s.rejected_malformed),
        static_cast<unsigned long long>(s.queue_depth));
    return 0;
  }
  std::fprintf(stderr, "odcfp_client: unknown command '%s'\n",
               command.c_str());
  usage(argv[0]);
  return 2;
}
