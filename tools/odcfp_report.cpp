// Causal post-mortem for a sharded fingerprinting run dir (src/dist/).
//
//   odcfp_report RUN_DIR                 human table
//   odcfp_report RUN_DIR --json          deterministic JSON report
//   odcfp_report RUN_DIR --stitch PATH   also write the stitched
//                                        cross-process Chrome trace
//   odcfp_report RUN_DIR --k F           latency-outlier threshold
//                                        (default 3.0: p99 > F x median)
//   odcfp_report RUN_DIR --threads N     stitcher parse parallelism
//                                        (output is identical for any N)
//
// Works on live, crashed, and finished runs alike — the report is a
// pure function of the run dir's primary sources (lease journal, shard
// journals, snapshots, trace files), so a debris dir left by a chaos
// kill analyzes exactly like a healthy one. Exit 0 whenever a report
// could be produced (crashed runs included: their anomalies are the
// point), 1 when the dir holds nothing analyzable, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/atomic_io.hpp"
#include "common/parallel.hpp"
#include "dist/report.hpp"
#include "dist/stitch.hpp"

namespace {

using namespace odcfp;

struct Args {
  std::string run_dir;
  std::string stitch_path;
  bool json = false;
  double k = 3.0;
  int threads = 1;
};

int usage() {
  std::fprintf(stderr,
               "usage: odcfp_report RUN_DIR [--json] [--stitch PATH]\n"
               "                    [--k FACTOR] [--threads N]\n");
  return 2;
}

bool parse_args(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      args->json = true;
    } else if (flag == "--stitch") {
      if (i + 1 >= argc) return false;
      args->stitch_path = argv[++i];
    } else if (flag == "--k") {
      if (i + 1 >= argc) return false;
      args->k = std::strtod(argv[++i], nullptr);
      if (args->k < 1.0) return false;
    } else if (flag == "--threads") {
      if (i + 1 >= argc) return false;
      args->threads = std::atoi(argv[++i]);
      if (args->threads <= 0) return false;
    } else if (!flag.empty() && flag[0] == '-') {
      return false;
    } else if (args->run_dir.empty()) {
      args->run_dir = flag;
    } else {
      return false;
    }
  }
  return !args->run_dir.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, &args)) return usage();
  if (!atomic_io::exists(args.run_dir)) {
    std::fprintf(stderr, "odcfp_report: run dir '%s' does not exist\n",
                 args.run_dir.c_str());
    return 2;
  }

  dist::ReportOptions options;
  options.latency_k = args.k;
  dist::RunReport report = dist::analyze_run(args.run_dir, options);
  if (report.status != Status::kOk) {
    std::fprintf(stderr, "odcfp_report: %s\n", report.message.c_str());
    return 1;
  }

  if (!args.stitch_path.empty()) {
    ThreadPool pool(args.threads);
    dist::StitchOptions stitch_options;
    stitch_options.pool = args.threads > 1 ? &pool : nullptr;
    const dist::StitchResult stitched =
        dist::stitch_run(args.run_dir, stitch_options);
    if (stitched.status != Status::kOk) {
      // An idle dir has nothing to stitch; the report above still counts.
      std::fprintf(stderr, "odcfp_report: %s\n",
                   stitched.message.c_str());
    } else {
      const atomic_io::WriteResult written =
          atomic_io::write_file_atomic(args.stitch_path, stitched.json);
      if (!written.ok) {
        std::fprintf(stderr,
                     "odcfp_report: writing stitched trace '%s': %s\n",
                     args.stitch_path.c_str(), written.error.c_str());
        return 1;
      }
      dist::fold_stitch(stitched, &report);
      std::fprintf(stderr, "odcfp_report: %s -> %s\n",
                   stitched.message.c_str(), args.stitch_path.c_str());
    }
  }

  const std::string rendered = args.json
                                   ? dist::render_report_json(report)
                                   : dist::render_report_table(report);
  std::fputs(rendered.c_str(), stdout);
  return 0;
}
