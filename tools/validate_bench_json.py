#!/usr/bin/env python3
"""Validate BENCH_<name>.json artifacts against bench/BENCH_schema.json.

Usage: validate_bench_json.py [--strict] SCHEMA REPORT [REPORT...]

Stdlib-only on purpose: CI runners and the dev container must not need
`jsonschema` (or any pip install) to check bench artifacts. The checker
implements exactly the subset of JSON Schema the bench schema uses —
type / required / additionalProperties / properties / items / $ref into
$defs / const / enum / minimum / minLength — and fails loudly on any
schema keyword it does not understand, so a schema edit cannot silently
disable validation.

The schema accepts every artifact generation (schema_version 1, 2, and
3; v3 adds optional per-node "hists" to the telemetry tree). --strict
additionally requires the current generation: schema_version == 3 with
the "host" and "trace_dropped_events" fields present.

Beyond the schema, rows carrying the label panel="stitch" (the
trace-stitch summary bench_shard_scale emits) are checked semantically:
they must carry the full metric set and report stitch_identical == 1 —
byte-identical stitched output across stitcher thread counts is a hard
determinism contract, not a soft number.

Exit status: 0 when every report validates, 1 otherwise.
"""

import json
import sys


class SchemaError(Exception):
    """The schema itself uses a keyword this checker does not implement."""


_TYPE_MAP = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}

_HANDLED_KEYWORDS = {
    "$schema", "$id", "$defs", "$ref", "title", "description",
    "type", "const", "enum", "required", "properties",
    "additionalProperties", "items", "minimum", "minLength",
}

# Keys added in schema_version 2 (and kept since); --strict requires
# them along with the current version.
_CURRENT_SCHEMA_VERSION = 3
_V2_REQUIRED_KEYS = ("host", "trace_dropped_events")


def _type_ok(value, type_name):
    if type_name == "integer":
        # bool is an int subclass in Python; a JSON true is not an integer.
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    expected = _TYPE_MAP.get(type_name)
    if expected is None:
        raise SchemaError(f"unknown type {type_name!r}")
    if expected is dict or expected is list:
        return isinstance(value, expected)
    # Exact-type match so True does not pass as a number via int subclass.
    return type(value) is expected


def _resolve_ref(ref, root_schema):
    if not ref.startswith("#/$defs/"):
        raise SchemaError(f"unsupported $ref {ref!r}")
    name = ref[len("#/$defs/"):]
    try:
        return root_schema["$defs"][name]
    except KeyError:
        raise SchemaError(f"dangling $ref {ref!r}") from None


def validate(value, schema, root_schema, path, errors):
    """Appends "path: message" strings to errors; returns nothing."""
    unknown = set(schema) - _HANDLED_KEYWORDS
    if unknown:
        raise SchemaError(
            f"schema at {path} uses unimplemented keywords: "
            f"{sorted(unknown)}")

    if "$ref" in schema:
        validate(value, _resolve_ref(schema["$ref"], root_schema),
                 root_schema, path, errors)
        return

    if "type" in schema:
        allowed = schema["type"]
        if isinstance(allowed, str):
            allowed = [allowed]
        if not any(_type_ok(value, t) for t in allowed):
            errors.append(
                f"{path}: expected {' or '.join(allowed)}, got "
                f"{type(value).__name__}")
            return  # structural keywords below assume the type matched

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected constant {schema['const']!r}, "
                      f"got {value!r}")

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")

    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if "minLength" in schema and isinstance(value, str) \
            and len(value) < schema["minLength"]:
        errors.append(f"{path}: string shorter than {schema['minLength']}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, child in value.items():
            child_path = f"{path}.{key}"
            if key in props:
                validate(child, props[key], root_schema, child_path, errors)
            elif isinstance(extra, dict):
                validate(child, extra, root_schema, child_path, errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")

    if isinstance(value, list) and "items" in schema:
        for i, child in enumerate(value):
            validate(child, schema["items"], root_schema,
                     f"{path}[{i}]", errors)


# Metrics every stitch-panel row must carry (bench_shard_scale).
_STITCH_REQUIRED_METRICS = (
    "stitch_ms", "stitched_events", "lease_spans", "missing_traces",
    "dropped_events", "stitch_identical",
)


def semantic_checks(report, errors):
    """Row-shape rules the generic schema cannot express."""
    if not isinstance(report, dict):
        return
    for i, row in enumerate(report.get("rows", [])):
        if not isinstance(row, dict):
            continue
        labels = row.get("labels", {})
        if not (isinstance(labels, dict)
                and labels.get("panel") == "stitch"):
            continue
        metrics = row.get("metrics", {})
        if not isinstance(metrics, dict):
            continue
        for key in _STITCH_REQUIRED_METRICS:
            if key not in metrics:
                errors.append(
                    f"$.rows[{i}]: stitch panel missing metric {key!r}")
        if "stitch_identical" in metrics \
                and metrics["stitch_identical"] != 1:
            errors.append(
                f"$.rows[{i}]: stitch_identical is "
                f"{metrics['stitch_identical']!r}; stitched output must "
                f"be byte-identical across stitcher thread counts")


def main(argv):
    args = list(argv[1:])
    strict = "--strict" in args
    if strict:
        args.remove("--strict")
    if len(args) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 1
    with open(args[0], encoding="utf-8") as f:
        schema = json.load(f)

    failed = False
    for report_path in args[1:]:
        try:
            with open(report_path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {report_path}: {exc}", file=sys.stderr)
            failed = True
            continue
        errors = []
        validate(report, schema, schema, "$", errors)
        semantic_checks(report, errors)
        if strict and isinstance(report, dict):
            version = report.get("schema_version")
            if version != _CURRENT_SCHEMA_VERSION:
                errors.append(
                    f"$: --strict requires schema_version "
                    f"{_CURRENT_SCHEMA_VERSION}, got {version!r}")
            for key in _V2_REQUIRED_KEYS:
                if key not in report:
                    errors.append(
                        f"$: --strict requires key {key!r}")
        if errors:
            failed = True
            print(f"FAIL {report_path}:", file=sys.stderr)
            for err in errors:
                print(f"  {err}", file=sys.stderr)
        else:
            rows = len(report.get("rows", []))
            smoke = " (smoke)" if report.get("smoke") else ""
            print(f"OK   {report_path}: bench={report.get('bench')!r} "
                  f"rows={rows}{smoke}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
